//! Where do the "+21µs over local Flash" go? (paper Figure 2 / Table 2)
//!
//! Decomposes the unloaded remote read path into its stages — client
//! stack (ingress), request fabric, NIC batching wait, RX processing,
//! QoS scheduling wait, device, completion, response egress — from the
//! shared telemetry spans the testbed records on every component,
//! comparing low load against heavy load (where batching and queueing
//! appear). Each stage reports count, mean, p50, p95 and p99 from the
//! same log-bucketed histograms every harness uses.
//!
//! Run: `cargo run --release -p reflex-bench --bin latency_breakdown`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;
use reflex_telemetry::{Stage, TenantKey};

/// `(stage, tenant key, TSV label)` — the request path in traversal
/// order. Fabric stages are recorded per direction, not per tenant, so
/// they sit under the global key.
const PATH: &[(Stage, TenantKey, &str)] = &[
    (Stage::Ingress, TenantKey(1), "client_ingress"),
    (Stage::Fabric, TenantKey::GLOBAL, "request_fabric"),
    (Stage::NicQueue, TenantKey(1), "nic_batch_wait"),
    (Stage::Dataplane, TenantKey(1), "rx_processing"),
    (Stage::FlashSq, TenantKey(1), "qos_sched_wait"),
    (Stage::Channel, TenantKey(1), "flash_device"),
    (Stage::Cq, TenantKey(1), "completion_tx"),
    (Stage::Egress, TenantKey::GLOBAL, "response_egress"),
];

fn breakdown_point(label: &str, offered: f64) -> PointOutcome {
    let mut tb = Testbed::builder().seed(131).build();
    // Spans are recorded passively, so instrumenting the run does not
    // shift the latencies it decomposes.
    tb.enable_telemetry();
    let slo = SloSpec::new(450_000, 100, SimDuration::from_millis(2));
    let mut spec = WorkloadSpec::open_loop(
        "app",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        offered,
    );
    spec.io_size = 1024;
    spec.conns = 32;
    spec.client_threads = 8;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let w = report.workload("app");
    let telemetry = report.telemetry.as_ref().expect("telemetry enabled");
    if reflex_bench::telemetry::enabled() {
        reflex_bench::telemetry::merge(telemetry);
    }
    let mut point = PointOutcome::new(w.p95_read_us())
        .with_row(format!(
            "\n## {label} ({offered:.0} IOPS offered, {:.0} achieved)",
            w.iops
        ))
        .with_row("stage\tcount\tmean_us\tp50_us\tp95_us\tp99_us");
    let mut server_mean = 0.0f64;
    for &(stage, tenant, name) in PATH {
        let Some(h) = telemetry.stage(tenant, stage) else {
            continue;
        };
        point = point
            .with_row(format!(
                "{name}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
                h.count(),
                h.mean().as_micros_f64(),
                h.p50().as_micros_f64(),
                h.p95().as_micros_f64(),
                h.p99().as_micros_f64(),
            ))
            .with_metric(format!("{name}_mean_us"), h.mean().as_micros_f64())
            .with_metric(format!("{name}_p95_us"), h.p95().as_micros_f64());
        if tenant == TenantKey(1) && stage != Stage::Ingress {
            server_mean += h.mean().as_micros_f64();
        }
    }
    point
        .with_row(format!(
            "end_to_end\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            w.read_latency.count(),
            w.mean_read_us(),
            w.read_latency.p50().as_micros_f64(),
            w.p95_read_us(),
            w.read_latency.p99().as_micros_f64(),
        ))
        .with_row(format!("server_stages_mean_sum\t-\t{server_mean:.1}"))
        .with_metric("achieved_iops", w.iops)
        .with_metric("end_to_end_mean_us", w.mean_read_us())
        .with_metric("server_stages_mean_us", server_mean)
        .with_events(report.engine_events)
}

fn main() {
    let points = [
        ("unloaded", 20_000.0f64),
        ("mid-load", 400_000.0),
        ("near-peak", 800_000.0),
    ];
    let mut sweep = Sweep::new("latency_breakdown");
    let curve = sweep.curve("breakdown");
    for (label, offered) in points {
        curve.point(move || breakdown_point(label, offered));
    }
    let result = sweep.run();
    println!("# Server-side latency decomposition (Figure 2 stages)");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("latency_breakdown");
}
