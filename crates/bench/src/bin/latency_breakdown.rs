//! Where do the "+21µs over local Flash" go? (paper Figure 2 / Table 2)
//!
//! Decomposes the unloaded remote read path into its stages — client
//! stack, wire, NIC batching wait, RX processing, QoS scheduling wait,
//! device, completion+TX — from the dataplane's per-request trace,
//! comparing low load against heavy load (where batching and queueing
//! appear).
//!
//! Run: `cargo run --release -p reflex-bench --bin latency_breakdown`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn breakdown_point(label: &str, offered: f64) -> PointOutcome {
    let mut tb = Testbed::builder().seed(131).build();
    let slo = SloSpec::new(450_000, 100, SimDuration::from_millis(2));
    let mut spec = WorkloadSpec::open_loop(
        "app",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        offered,
    );
    spec.io_size = 1024;
    spec.conns = 32;
    spec.client_threads = 8;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let w = report.workload("app");
    let b = tb.world().server().threads()[0].latency_breakdown();
    let (rx_wait, rx_proc, sched_wait, device, tx) = b.means_us();
    let server_total = rx_wait + rx_proc + sched_wait + device + tx;
    let client_and_wire = w.mean_read_us() - server_total;
    PointOutcome::new(w.p95_read_us())
        .with_row(format!(
            "\n## {label} ({offered:.0} IOPS offered, {:.0} achieved)",
            w.iops
        ))
        .with_row("stage\tmean_us")
        .with_row(format!("client+wire\t{client_and_wire:.1}"))
        .with_row(format!("nic_batch_wait\t{rx_wait:.1}"))
        .with_row(format!("rx_processing\t{rx_proc:.1}"))
        .with_row(format!("qos_sched_wait\t{sched_wait:.1}"))
        .with_row(format!("flash_device\t{device:.1}"))
        .with_row(format!("completion_tx\t{tx:.1}"))
        .with_row(format!(
            "end_to_end_mean\t{:.1}\tp95\t{:.1}",
            w.mean_read_us(),
            w.p95_read_us()
        ))
        .with_metric("achieved_iops", w.iops)
        .with_metric("client_wire_us", client_and_wire)
        .with_metric("nic_batch_wait_us", rx_wait)
        .with_metric("rx_processing_us", rx_proc)
        .with_metric("qos_sched_wait_us", sched_wait)
        .with_metric("flash_device_us", device)
        .with_metric("completion_tx_us", tx)
        .with_events(report.engine_events)
}

fn main() {
    let points = [
        ("unloaded", 20_000.0f64),
        ("mid-load", 400_000.0),
        ("near-peak", 800_000.0),
    ];
    let mut sweep = Sweep::new("latency_breakdown");
    let curve = sweep.curve("breakdown");
    for (label, offered) in points {
        curve.point(move || breakdown_point(label, offered));
    }
    let result = sweep.run();
    println!("# Server-side latency decomposition (Figure 2 stages)");
    result.print_tsv();
    result.write_json_or_warn();
}
