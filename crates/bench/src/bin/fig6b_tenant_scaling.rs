//! Figure 6b: tenant scaling — how many tenants can each ReFlex core
//! serve before tenant management limits throughput?
//!
//! Each tenant uses one connection issuing 100 1KB-read IOPS (paced).
//! With 1, 2 and 4 server cores, aggregate achieved IOPS should track the
//! offered load linearly until per-round tenant iteration saturates the
//! cores (paper: ~2,500 tenants per core).
//!
//! Run: `cargo run --release -p reflex-bench --bin fig6b_tenant_scaling`

use reflex_bench::run_testbed;
use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{TenantClass, TenantId};
use reflex_sim::SimDuration;

fn tenant_point(cores: u32, tenants: u32) -> PointOutcome {
    let tb = Testbed::builder()
        .seed(61)
        .server(ServerConfig {
            threads: cores,
            max_threads: cores,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(LinkConfig::forty_gbe())
        .build();
    let specs: Vec<WorkloadSpec> = (0..tenants)
        .map(|t| {
            let mut spec = WorkloadSpec::open_loop(
                &format!("t{t}"),
                TenantId(t + 1),
                TenantClass::BestEffort,
                100.0,
            );
            spec.io_size = 1024;
            spec.client_machine = (t % 2) as usize;
            spec
        })
        .collect();
    let report = run_testbed(
        tb,
        specs,
        SimDuration::from_millis(100),
        SimDuration::from_millis(300),
    );
    let achieved: f64 = report.workloads.iter().map(|w| w.iops).sum();
    let busy = report
        .threads
        .iter()
        .map(|t| t.busy_fraction)
        .fold(0.0f64, f64::max);
    PointOutcome::new(0.0)
        .with_row(format!(
            "{cores}\t{tenants}\t{:.0}\t{:.0}\t{busy:.2}",
            tenants as f64 * 100.0 / 1e3,
            achieved / 1e3
        ))
        .with_metric("achieved_kiops", achieved / 1e3)
        .with_metric("busy_frac", busy)
        .with_events(report.engine_events)
}

fn main() {
    let core_counts = [1u32, 2, 4];
    let mut sweep = Sweep::new("fig6b_tenant_scaling");
    for cores in core_counts {
        let curve = sweep.curve(format!("{cores}cores"));
        for tenants in [250u32, 500, 1_000, 2_000, 3_000, 4_500, 6_000] {
            // Keep the per-core tenant count meaningful: skip absurd points.
            if tenants / cores > 6_000 {
                continue;
            }
            curve.point(move || tenant_point(cores, tenants));
        }
    }
    let result = sweep.run();
    println!("# Figure 6b: tenants at 100 x 1KB-read IOPS each (1 conn per tenant)");
    println!("cores\ttenants\toffered_kiops\tachieved_kiops\tbusy_frac");
    for cores in core_counts {
        for p in &result.curve(&format!("{cores}cores")).points {
            for row in &p.rows {
                println!("{row}");
            }
        }
        println!();
    }
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig6b_tenant_scaling");
}
