//! Extensions beyond the paper's shipped system — the features its §4.1
//! limitations and §6 discussion call out as future work, measured:
//!
//! * **UDP transport**: unloaded latency and single-core throughput vs TCP.
//! * **Sharded tenants**: one tenant's throughput with 1 vs 2 shards.
//! * **Barriers**: cost of a barrier between dependent I/Os.
//!
//! Run: `cargo run --release -p reflex-bench --bin ext_features`

use reflex_bench::run_testbed;
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_dataplane::DataplaneConfig;
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn unloaded(client: StackProfile, server: StackProfile, dp: DataplaneConfig) -> f64 {
    let tb = Testbed::builder()
        .seed(121)
        .client_machines(vec![client])
        .server_stack(server)
        .server(ServerConfig { dataplane: dp, ..ServerConfig::default() })
        .build();
    let slo = SloSpec::new(20_000, 100, SimDuration::from_micros(500));
    let spec = WorkloadSpec::closed_loop("p", TenantId(1), TenantClass::LatencyCritical(slo), 1);
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(50),
        SimDuration::from_millis(300),
    );
    report.workload("p").mean_read_us()
}

fn peak(client: StackProfile, server: StackProfile, dp: DataplaneConfig) -> f64 {
    let tb = Testbed::builder()
        .seed(122)
        .client_machines(vec![client.clone(), client])
        .server_stack(server)
        .server(ServerConfig { dataplane: dp, ..ServerConfig::default() })
        .link(LinkConfig::forty_gbe())
        .build();
    let specs = (0..2u32)
        .map(|i| {
            let mut spec = WorkloadSpec::open_loop(
                &format!("b{i}"),
                TenantId(i + 1),
                TenantClass::BestEffort,
                700_000.0,
            );
            spec.io_size = 1024;
            spec.conns = 64;
            spec.client_threads = 8;
            spec.client_machine = i as usize;
            spec
        })
        .collect();
    let report = run_testbed(
        tb,
        specs,
        SimDuration::from_millis(60),
        SimDuration::from_millis(150),
    );
    report.workloads.iter().map(|w| w.iops).sum()
}

fn sharded(shards: u32) -> f64 {
    let tb = Testbed::builder()
        .seed(123)
        .server(ServerConfig { threads: 2, max_threads: 2, ..ServerConfig::default() })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(LinkConfig::forty_gbe())
        .build();
    let mut spec =
        WorkloadSpec::open_loop("big", TenantId(1), TenantClass::BestEffort, 1_200_000.0);
    spec.io_size = 1024;
    spec.conns = 64;
    spec.client_threads = 16;
    spec.shards = shards;
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(60),
        SimDuration::from_millis(150),
    );
    report.workload("big").iops
}

fn main() {
    println!("# Extension measurements (future-work features implemented)");
    println!("## UDP transport (paper: 'both tail latency and throughput will improve')");
    let tcp_lat = unloaded(
        StackProfile::ix_tcp(),
        StackProfile::dataplane_raw(),
        DataplaneConfig::default(),
    );
    let udp_lat = unloaded(
        StackProfile::ix_udp(),
        StackProfile::dataplane_raw_udp(),
        DataplaneConfig::udp(),
    );
    println!("unloaded_read_us\ttcp={tcp_lat:.1}\tudp={udp_lat:.1}");
    let tcp_peak = peak(
        StackProfile::ix_tcp(),
        StackProfile::dataplane_raw(),
        DataplaneConfig::default(),
    );
    let udp_peak = peak(
        StackProfile::ix_udp(),
        StackProfile::dataplane_raw_udp(),
        DataplaneConfig::udp(),
    );
    println!("one_core_1kb_iops\ttcp={tcp_peak:.0}\tudp={udp_peak:.0}");

    println!("\n## Sharded tenants (paper §4.1 limitation removed)");
    println!("one_tenant_iops\t1_shard={:.0}\t2_shards={:.0}", sharded(1), sharded(2));
}
