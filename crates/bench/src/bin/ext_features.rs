//! Extensions beyond the paper's shipped system — the features its §4.1
//! limitations and §6 discussion call out as future work, measured:
//!
//! * **UDP transport**: unloaded latency and single-core throughput vs TCP.
//! * **Sharded tenants**: one tenant's throughput with 1 vs 2 shards.
//! * **Barriers**: cost of a barrier between dependent I/Os.
//!
//! Run: `cargo run --release -p reflex-bench --bin ext_features`

use reflex_bench::run_testbed;
use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::{ServerConfig, Testbed, WorkloadSpec};
use reflex_dataplane::DataplaneConfig;
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::SimDuration;

fn unloaded(client: StackProfile, server: StackProfile, dp: DataplaneConfig) -> f64 {
    let tb = Testbed::builder()
        .seed(121)
        .client_machines(vec![client])
        .server_stack(server)
        .server(ServerConfig {
            dataplane: dp,
            ..ServerConfig::default()
        })
        .build();
    let slo = SloSpec::new(20_000, 100, SimDuration::from_micros(500));
    let spec = WorkloadSpec::closed_loop("p", TenantId(1), TenantClass::LatencyCritical(slo), 1);
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(50),
        SimDuration::from_millis(300),
    );
    report.workload("p").mean_read_us()
}

fn peak(client: StackProfile, server: StackProfile, dp: DataplaneConfig) -> f64 {
    let tb = Testbed::builder()
        .seed(122)
        .client_machines(vec![client.clone(), client])
        .server_stack(server)
        .server(ServerConfig {
            dataplane: dp,
            ..ServerConfig::default()
        })
        .link(LinkConfig::forty_gbe())
        .build();
    let specs = (0..2u32)
        .map(|i| {
            let mut spec = WorkloadSpec::open_loop(
                &format!("b{i}"),
                TenantId(i + 1),
                TenantClass::BestEffort,
                700_000.0,
            );
            spec.io_size = 1024;
            spec.conns = 64;
            spec.client_threads = 8;
            spec.client_machine = i as usize;
            spec
        })
        .collect();
    let report = run_testbed(
        tb,
        specs,
        SimDuration::from_millis(60),
        SimDuration::from_millis(150),
    );
    report.workloads.iter().map(|w| w.iops).sum()
}

fn sharded(shards: u32) -> f64 {
    let tb = Testbed::builder()
        .seed(123)
        .server(ServerConfig {
            threads: 2,
            max_threads: 2,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(), StackProfile::ix_tcp()])
        .link(LinkConfig::forty_gbe())
        .build();
    let mut spec =
        WorkloadSpec::open_loop("big", TenantId(1), TenantClass::BestEffort, 1_200_000.0);
    spec.io_size = 1024;
    spec.conns = 64;
    spec.client_threads = 16;
    spec.shards = shards;
    let report = run_testbed(
        tb,
        vec![spec],
        SimDuration::from_millis(60),
        SimDuration::from_millis(150),
    );
    report.workload("big").iops
}

fn tcp_udp_stacks(udp: bool) -> (StackProfile, StackProfile, DataplaneConfig) {
    if udp {
        (
            StackProfile::ix_udp(),
            StackProfile::dataplane_raw_udp(),
            DataplaneConfig::udp(),
        )
    } else {
        (
            StackProfile::ix_tcp(),
            StackProfile::dataplane_raw(),
            DataplaneConfig::default(),
        )
    }
}

fn main() {
    // Each of the six simulations is its own point; the combined
    // tcp=/udp= rows are assembled from point metrics after the run.
    let mut sweep = Sweep::new("ext_features");
    let curve = sweep.curve("unloaded_read_us");
    for udp in [false, true] {
        curve.point(move || {
            let (client, server, dp) = tcp_udp_stacks(udp);
            PointOutcome::new(0.0).with_metric("value", unloaded(client, server, dp))
        });
    }
    let curve = sweep.curve("one_core_1kb_iops");
    for udp in [false, true] {
        curve.point(move || {
            let (client, server, dp) = tcp_udp_stacks(udp);
            PointOutcome::new(0.0).with_metric("value", peak(client, server, dp))
        });
    }
    let curve = sweep.curve("one_tenant_iops");
    for shards in [1u32, 2] {
        curve.point(move || PointOutcome::new(0.0).with_metric("value", sharded(shards)));
    }
    let result = sweep.run();
    let value = |curve: &str, idx: usize| {
        result.curve(curve).points[idx]
            .metric("value")
            .expect("value metric")
    };

    println!("# Extension measurements (future-work features implemented)");
    println!("## UDP transport (paper: 'both tail latency and throughput will improve')");
    println!(
        "unloaded_read_us\ttcp={:.1}\tudp={:.1}",
        value("unloaded_read_us", 0),
        value("unloaded_read_us", 1)
    );
    println!(
        "one_core_1kb_iops\ttcp={:.0}\tudp={:.0}",
        value("one_core_1kb_iops", 0),
        value("one_core_1kb_iops", 1)
    );

    println!("\n## Sharded tenants (paper §4.1 limitation removed)");
    println!(
        "one_tenant_iops\t1_shard={:.0}\t2_shards={:.0}",
        value("one_tenant_iops", 0),
        value("one_tenant_iops", 1)
    );
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("ext_features");
}
