//! Replication figure: healthy overlays (R × read policy vs offered
//! load) plus failover recovery and SLO-violation panels.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig_replication [-- --smoke]`
//!
//! Honors `REFLEX_SIM_SHARDS` for the healthy overlay points; the
//! printed output is byte-identical at any shard count (CI diffs 1 vs 4).

use reflex_bench::replication;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shards = reflex_bench::sim_shards();
    let result = replication::build_sweep(smoke, shards).run();
    print!("{}", replication::render(&result));
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig_replication");
}
