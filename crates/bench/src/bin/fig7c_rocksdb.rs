//! Figure 7c: RocksDB `db_bench` slowdown over remote Flash.
//!
//! bulkload (BL), randomread (RR) and readwhilewriting (RwW) on a 43GB
//! database with a cgroup-limited page cache, on the local NVMe path, the
//! ReFlex block driver, and iSCSI. Reported as slowdown vs local Flash
//! (paper: BL ≈ equal everywhere; RR/RwW: iSCSI 32%/27%, ReFlex < 4%).
//!
//! Run: `cargo run --release -p reflex-bench --bin fig7c_rocksdb`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_flash::device_a;
use reflex_workloads::{run_db_bench, Backend, BackendProfile, DbBenchmark, LsmConfig};

fn bench_point(bench: DbBenchmark) -> PointOutcome {
    let config = LsmConfig::default();
    let mut runtimes = Vec::new();
    for profile in [
        BackendProfile::local_nvme(),
        BackendProfile::reflex_remote(),
        BackendProfile::iscsi_remote(),
    ] {
        let mut backend = Backend::new(profile, device_a(), 6, 101);
        runtimes.push(run_db_bench(bench, &config, &mut backend, 19).as_secs_f64());
    }
    PointOutcome::new(0.0)
        .with_row(format!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.3}\t{:.3}",
            bench.name(),
            runtimes[0],
            runtimes[1],
            runtimes[2],
            runtimes[1] / runtimes[0],
            runtimes[2] / runtimes[0]
        ))
        .with_metric("local_s", runtimes[0])
        .with_metric("reflex_s", runtimes[1])
        .with_metric("iscsi_s", runtimes[2])
        .with_metric("reflex_slowdown", runtimes[1] / runtimes[0])
        .with_metric("iscsi_slowdown", runtimes[2] / runtimes[0])
}

fn main() {
    let mut sweep = Sweep::new("fig7c_rocksdb");
    for bench in DbBenchmark::all() {
        sweep.curve(bench.name()).point(move || bench_point(bench));
    }
    let result = sweep.run();
    println!("# Figure 7c: RocksDB db_bench slowdown vs local Flash (43GB DB)");
    println!("bench\tlocal_s\treflex_s\tiscsi_s\treflex_slowdown\tiscsi_slowdown");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig7c_rocksdb");
}
