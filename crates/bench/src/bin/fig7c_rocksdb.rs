//! Figure 7c: RocksDB `db_bench` slowdown over remote Flash.
//!
//! bulkload (BL), randomread (RR) and readwhilewriting (RwW) on a 43GB
//! database with a cgroup-limited page cache, on the local NVMe path, the
//! ReFlex block driver, and iSCSI. Reported as slowdown vs local Flash
//! (paper: BL ≈ equal everywhere; RR/RwW: iSCSI 32%/27%, ReFlex < 4%).
//!
//! Run: `cargo run --release -p reflex-bench --bin fig7c_rocksdb`

use reflex_flash::device_a;
use reflex_workloads::{run_db_bench, Backend, BackendProfile, DbBenchmark, LsmConfig};

fn main() {
    println!("# Figure 7c: RocksDB db_bench slowdown vs local Flash (43GB DB)");
    println!("bench\tlocal_s\treflex_s\tiscsi_s\treflex_slowdown\tiscsi_slowdown");
    let config = LsmConfig::default();
    for bench in DbBenchmark::all() {
        let mut runtimes = Vec::new();
        for profile in [
            BackendProfile::local_nvme(),
            BackendProfile::reflex_remote(),
            BackendProfile::iscsi_remote(),
        ] {
            let mut backend = Backend::new(profile, device_a(), 6, 101);
            runtimes.push(run_db_bench(bench, &config, &mut backend, 19).as_secs_f64());
        }
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.3}\t{:.3}",
            bench.name(),
            runtimes[0],
            runtimes[1],
            runtimes[2],
            runtimes[1] / runtimes[0],
            runtimes[2] / runtimes[0]
        );
    }
}
