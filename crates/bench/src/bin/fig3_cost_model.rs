//! Figure 3: request cost models for devices A, B and C.
//!
//! p95 read latency versus *weighted* IOPS (tokens/s) for workloads with
//! various read ratios and request sizes. Under the per-device cost model
//! the curves collapse onto each other — the property the QoS scheduler
//! relies on. Also fits the linear model per device (paper §3.2.1) and
//! prints the calibrated constants next to the published ones.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig3_cost_model`

use reflex_bench::sweep::{PointOutcome, Sweep, SweepResult};
use reflex_core::sweep_device_point;
use reflex_flash::{device_a, device_b, device_c, DeviceProfile};
use reflex_qos::{fit_cost_model, max_iops_at_latency, CostModel, LoadMix, RatioCapacity};
use reflex_sim::SimDuration;

fn weighted(model: &CostModel, read_pct: u8, io_size: u32, iops: f64, read_only: bool) -> f64 {
    let mix = if read_only {
        LoadMix::ReadOnly
    } else {
        LoadMix::Mixed
    };
    let r = read_pct as f64 / 100.0;
    let read_cost = model.read_cost(mix).as_tokens_f64();
    let write_cost = model.write_cost().as_tokens_f64();
    let pages = io_size.div_ceil(4096).max(1) as f64;
    iops * pages * (r * read_cost + (1.0 - r) * write_cost)
}

/// (read_pct, io_size) curves as in Figure 3.
const CURVES: [(u8, u32); 8] = [
    (100, 1024),
    (100, 32 * 1024),
    (100, 4096),
    (99, 4096),
    (95, 4096),
    (90, 4096),
    (75, 4096),
    (50, 4096),
];

fn curve_label(device: &str, read_pct: u8, io_size: u32) -> String {
    if io_size == 4096 {
        format!("{device}/{read_pct}%rd(4KB)")
    } else {
        format!("{device}/{read_pct}%rd({}KB)", io_size / 1024)
    }
}

fn add_device(sweep: &mut Sweep, profile: &DeviceProfile) {
    let model = CostModel::for_profile(profile);
    for (read_pct, io_size) in CURVES {
        let r = read_pct as f64 / 100.0;
        let pages = io_size.div_ceil(4096).max(1) as f64;
        let cost = pages * (r + (1.0 - r) * profile.write_cost_tokens());
        let bonus = if read_pct == 100 { 1.5 } else { 1.0 };
        let max_iops = profile.token_rate() / cost * bonus;
        // No cutoff here: the cost-model fit needs the full sweep, so the
        // serial harness's print-then-break rule is applied at print time.
        let curve = sweep.curve(curve_label(&profile.name, read_pct, io_size));
        let label = curve_label(&profile.name, read_pct, io_size);
        let label = label.split_once('/').expect("device prefix").1.to_string();
        for (k, i) in (1..=12).enumerate() {
            let iops = max_iops * i as f64 / 10.0;
            let profile = profile.clone();
            let model = model.clone();
            let label = label.clone();
            curve.point(move || {
                let p = sweep_device_point(
                    &profile,
                    read_pct,
                    io_size,
                    iops,
                    SimDuration::from_millis(300),
                    13,
                    k,
                );
                let tokens = weighted(&model, read_pct, io_size, p.iops, read_pct == 100);
                PointOutcome::new(p.p95_read_us)
                    .with_row(format!(
                        "{label}\t{:.0}\t{:.0}",
                        tokens / 1e3,
                        p.p95_read_us
                    ))
                    .with_metric("iops", p.iops)
                    .with_metric("weighted_tokens", tokens)
            });
        }
    }
}

fn print_device(result: &SweepResult, profile: &DeviceProfile, published_write_cost: f64) {
    println!(
        "# Device {} (published C(write) = {published_write_cost})",
        profile.name
    );
    println!("curve\tweighted_ktokens\tp95_read_us");
    let mut observations = Vec::new();
    for (read_pct, io_size) in CURVES {
        let curve = result.curve(&curve_label(&profile.name, read_pct, io_size));
        for p in &curve.points {
            for row in &p.rows {
                println!("{row}");
            }
            if p.p95_us > 5_000.0 {
                break;
            }
        }
        // Collect knee observations for the fit (4KB mixed curves + RO),
        // using the full sweep exactly like the serial harness did.
        if io_size == 4096 {
            let sweep: Vec<reflex_qos::SweepPoint> = curve
                .points
                .iter()
                .map(|p| reflex_qos::SweepPoint {
                    iops: p.metric("iops").expect("iops metric"),
                    p95_read_us: p.p95_us,
                })
                .collect();
            if let Some(iops) = max_iops_at_latency(&sweep, 1_000.0) {
                observations.push(RatioCapacity {
                    read_pct,
                    max_iops: iops,
                });
            }
        }
    }
    match fit_cost_model(&observations) {
        Ok(fit) => println!(
            "# fitted: C(write) = {:.1} tokens (published {published_write_cost}), \
             capacity = {:.0} tokens/s, C(read,100%) = {:.2}, rms {:.1}%",
            fit.write_cost,
            fit.token_rate,
            fit.read_only_cost,
            fit.rms_rel_error * 100.0
        ),
        Err(e) => println!("# fit failed: {e}"),
    }
    println!();
}

fn main() {
    let devices = [(device_a(), 10.0), (device_b(), 20.0), (device_c(), 16.0)];
    let mut sweep = Sweep::new("fig3_cost_model");
    for (profile, _) in &devices {
        add_device(&mut sweep, profile);
    }
    let result = sweep.run();
    println!("# Figure 3: latency vs weighted IOPS; curves should collapse per device");
    for (profile, published) in &devices {
        print_device(&result, profile, *published);
    }
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig3_cost_model");
}
