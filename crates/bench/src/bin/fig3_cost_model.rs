//! Figure 3: request cost models for devices A, B and C.
//!
//! p95 read latency versus *weighted* IOPS (tokens/s) for workloads with
//! various read ratios and request sizes. Under the per-device cost model
//! the curves collapse onto each other — the property the QoS scheduler
//! relies on. Also fits the linear model per device (paper §3.2.1) and
//! prints the calibrated constants next to the published ones.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig3_cost_model`

use reflex_core::sweep_device_sized;
use reflex_flash::{device_a, device_b, device_c, DeviceProfile};
use reflex_qos::{fit_cost_model, max_iops_at_latency, CostModel, LoadMix, RatioCapacity};
use reflex_sim::SimDuration;

fn weighted(model: &CostModel, read_pct: u8, io_size: u32, iops: f64, read_only: bool) -> f64 {
    let mix = if read_only { LoadMix::ReadOnly } else { LoadMix::Mixed };
    let r = read_pct as f64 / 100.0;
    let read_cost = model.read_cost(mix).as_tokens_f64();
    let write_cost = model.write_cost().as_tokens_f64();
    let pages = io_size.div_ceil(4096).max(1) as f64;
    iops * pages * (r * read_cost + (1.0 - r) * write_cost)
}

fn run_device(profile: &DeviceProfile, published_write_cost: f64) {
    let model = CostModel::for_profile(profile);
    println!("# Device {} (published C(write) = {published_write_cost})", profile.name);
    println!("curve\tweighted_ktokens\tp95_read_us");

    // (read_pct, io_size) curves as in Figure 3.
    let curves: [(u8, u32); 8] = [
        (100, 1024),
        (100, 32 * 1024),
        (100, 4096),
        (99, 4096),
        (95, 4096),
        (90, 4096),
        (75, 4096),
        (50, 4096),
    ];
    let mut observations = Vec::new();
    for (read_pct, io_size) in curves {
        let r = read_pct as f64 / 100.0;
        let pages = io_size.div_ceil(4096).max(1) as f64;
        let cost = pages * (r + (1.0 - r) * profile.write_cost_tokens());
        let bonus = if read_pct == 100 { 1.5 } else { 1.0 };
        let max_iops = profile.token_rate() / cost * bonus;
        let offered: Vec<f64> = (1..=12).map(|i| max_iops * i as f64 / 10.0).collect();
        let sweep = sweep_device_sized(
            profile,
            read_pct,
            io_size,
            &offered,
            SimDuration::from_millis(300),
            13,
        );
        let label = if io_size == 4096 {
            format!("{read_pct}%rd(4KB)")
        } else {
            format!("{read_pct}%rd({}KB)", io_size / 1024)
        };
        for p in &sweep {
            let tokens = weighted(&model, read_pct, io_size, p.iops, read_pct == 100);
            println!("{label}\t{:.0}\t{:.0}", tokens / 1e3, p.p95_read_us);
            if p.p95_read_us > 5_000.0 {
                break;
            }
        }
        // Collect knee observations for the fit (4KB mixed curves + RO).
        if io_size == 4096 {
            if let Some(iops) = max_iops_at_latency(&sweep, 1_000.0) {
                observations.push(RatioCapacity { read_pct, max_iops: iops });
            }
        }
    }
    match fit_cost_model(&observations) {
        Ok(fit) => println!(
            "# fitted: C(write) = {:.1} tokens (published {published_write_cost}), \
             capacity = {:.0} tokens/s, C(read,100%) = {:.2}, rms {:.1}%",
            fit.write_cost,
            fit.token_rate,
            fit.read_only_cost,
            fit.rms_rel_error * 100.0
        ),
        Err(e) => println!("# fit failed: {e}"),
    }
    println!();
}

fn main() {
    println!("# Figure 3: latency vs weighted IOPS; curves should collapse per device");
    run_device(&device_a(), 10.0);
    run_device(&device_b(), 20.0);
    run_device(&device_c(), 16.0);
}
