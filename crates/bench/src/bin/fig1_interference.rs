//! Figure 1: the impact of interference on Flash performance.
//!
//! p95 read latency versus total IOPS for 4KB workloads with read ratios
//! from 50% to 100% on device A, measured directly against the simulated
//! device (local access, no network) exactly like the paper's device
//! characterization.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig1_interference`

use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_core::sweep_device_point;
use reflex_flash::device_a;
use reflex_sim::SimDuration;

fn main() {
    let profile = device_a();
    let mut sweep = Sweep::new("fig1_interference");
    for read_pct in [100u8, 99, 95, 90, 75, 50] {
        // Sweep up to just past each ratio's saturation point.
        let r = read_pct as f64 / 100.0;
        let cost = r + (1.0 - r) * profile.write_cost_tokens();
        let read_only_bonus = if read_pct == 100 { 1.55 } else { 1.0 };
        let max_iops = profile.token_rate() / cost * read_only_bonus;
        let curve = sweep.curve(format!("{read_pct}%rd"));
        curve.cutoff_p95_us(5_000.0); // past the knee; the paper's y-axis stops at 2ms
        for (k, i) in (1..=13).enumerate() {
            let iops = max_iops * i as f64 / 11.0;
            let profile = profile.clone();
            curve.point(move || {
                let p = sweep_device_point(
                    &profile,
                    read_pct,
                    4096,
                    iops,
                    SimDuration::from_millis(400),
                    11,
                    k,
                );
                PointOutcome::new(p.p95_read_us)
                    .with_row(format!(
                        "{read_pct}\t{:.0}\t{:.0}",
                        p.iops / 1e3,
                        p.p95_read_us
                    ))
                    .with_metric("iops", p.iops)
            });
        }
    }
    let result = sweep.run();
    println!("# Figure 1: p95 read latency vs total IOPS (4KB, device A)");
    println!("read_pct\ttotal_kiops\tp95_read_us");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig1_interference");
}
