//! Figure 1: the impact of interference on Flash performance.
//!
//! p95 read latency versus total IOPS for 4KB workloads with read ratios
//! from 50% to 100% on device A, measured directly against the simulated
//! device (local access, no network) exactly like the paper's device
//! characterization.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig1_interference`

use reflex_core::sweep_device;
use reflex_flash::device_a;
use reflex_sim::SimDuration;

fn main() {
    let profile = device_a();
    println!("# Figure 1: p95 read latency vs total IOPS (4KB, device A)");
    println!("read_pct\ttotal_kiops\tp95_read_us");
    for read_pct in [100u8, 99, 95, 90, 75, 50] {
        // Sweep up to just past each ratio's saturation point.
        let r = read_pct as f64 / 100.0;
        let cost = r + (1.0 - r) * profile.write_cost_tokens();
        let read_only_bonus = if read_pct == 100 { 1.55 } else { 1.0 };
        let max_iops = profile.token_rate() / cost * read_only_bonus;
        let offered: Vec<f64> = (1..=13).map(|i| max_iops * i as f64 / 11.0).collect();
        let sweep =
            sweep_device(&profile, read_pct, &offered, SimDuration::from_millis(400), 11);
        for p in sweep {
            println!("{read_pct}\t{:.0}\t{:.0}", p.iops / 1e3, p.p95_read_us);
            if p.p95_read_us > 5_000.0 {
                break; // past the knee; the paper's y-axis stops at 2ms
            }
        }
    }
}
