//! Chaos sweep: throughput/latency under escalating injected faults.
//!
//! Run: `cargo run --release -p reflex-bench --bin chaos [-- --smoke]`
//!
//! `--smoke` runs the CI-sized plan and exits non-zero if any injected
//! fault went unrecovered (requests exhausted their retry budget or
//! tenants stranded without a server) — the regression gate for the
//! recovery machinery.

use reflex_bench::chaos;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut result = chaos::build_sweep(smoke).run();
    println!(
        "# Chaos: recovery under escalating faults{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!("{}", chaos::TSV_HEADER);
    result.print_tsv();
    let summary = chaos::faults_summary(&result);
    result.set_faults(summary);
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("chaos");
    eprintln!(
        "[chaos] injected={} recovered={} unrecovered={} downtime={:.1}ms",
        summary.injected,
        summary.recovered,
        summary.unrecovered,
        summary.downtime_secs * 1_000.0
    );
    if smoke && summary.unrecovered > 0 {
        eprintln!(
            "[chaos] smoke gate FAILED: {} unrecovered faults",
            summary.unrecovered
        );
        std::process::exit(1);
    }
}
