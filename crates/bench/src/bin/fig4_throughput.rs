//! Figure 4: tail latency vs throughput for 1KB read-only requests.
//!
//! Curves: Local (SPDK) with 1 and 2 threads, ReFlex with 1 and 2 server
//! cores, and the libaio+libevent server with 1 and 2 workers. ReFlex
//! reaches ~850K IOPS on one core and saturates the device with two;
//! libaio manages ~75K per core.
//!
//! Run: `cargo run --release -p reflex-bench --bin fig4_throughput`

use reflex_baselines::{BaselineConfig, BaselineServer, LocalRig};
use reflex_bench::sweep::{PointOutcome, Sweep};
use reflex_bench::{max_p95_read_us, run_testbed, MEASURE, WARMUP};
use reflex_core::{ServerConfig, Testbed, TestbedBuilder, WorkloadSpec};
use reflex_flash::device_a;
use reflex_net::{LinkConfig, StackProfile};
use reflex_qos::{TenantClass, TenantId};

fn load_specs(total_iops: f64, clients: usize) -> Vec<WorkloadSpec> {
    (0..clients)
        .map(|i| {
            let mut spec = WorkloadSpec::open_loop(
                &format!("load{i}"),
                TenantId(i as u32 + 1),
                TenantClass::BestEffort,
                total_iops / clients as f64,
            );
            spec.io_size = 1024;
            spec.conns = 48;
            spec.client_threads = 8;
            spec.client_machine = i;
            spec
        })
        .collect()
}

fn reflex_point(threads: u32, offered: f64) -> (f64, f64, u64) {
    // Four IX client machines (the paper's testbed size) and a 40GbE link
    // so the network never caps the 1KB experiment (the paper notes the
    // 10GbE bottleneck explicitly and uses 1KB requests to stress server
    // IOPS instead). Four machines also give `REFLEX_SIM_SHARDS=4` a full
    // client shard per core.
    let tb = Testbed::builder()
        .seed(31)
        .server(ServerConfig {
            threads,
            max_threads: threads,
            ..ServerConfig::default()
        })
        .client_machines(vec![StackProfile::ix_tcp(); 4])
        .link(LinkConfig::forty_gbe())
        .build();
    let report = run_testbed(tb, load_specs(offered, 4), WARMUP, MEASURE);
    let total: f64 = report.workloads.iter().map(|w| w.iops).sum();
    (total, max_p95_read_us(&report), report.engine_events)
}

fn libaio_point(workers: u32, offered: f64) -> (f64, f64, u64) {
    let config = BaselineConfig::libaio().with_threads(workers);
    let tb = TestbedBuilder::new()
        .seed(32)
        .server_stack(StackProfile::linux_tcp())
        .client_machines(vec![StackProfile::ix_tcp(); 4])
        .link(LinkConfig::forty_gbe())
        .build_with(move |fabric, device, machine| {
            BaselineServer::new(machine, fabric, device, config, 33)
        });
    let report = run_testbed(tb, load_specs(offered, 4), WARMUP, MEASURE);
    let total: f64 = report.workloads.iter().map(|w| w.iops).sum();
    (total, max_p95_read_us(&report), report.engine_events)
}

fn local_point(threads: u32, offered: f64) -> (f64, f64, u64) {
    let mut rig = LocalRig::new(device_a(), threads, 34);
    let rep = rig.run_open_loop(offered, 100, 1024, WARMUP, MEASURE);
    (rep.iops, rep.latency_p95_us(), 0)
}

trait P95Ext {
    fn latency_p95_us(&self) -> f64;
}
impl P95Ext for reflex_baselines::LocalReport {
    fn latency_p95_us(&self) -> f64 {
        self.read_latency.p95().as_micros_f64()
    }
}

fn main() {
    let fracs = [0.2, 0.4, 0.6, 0.75, 0.9, 1.0, 1.1];
    type Point = fn(u32, f64) -> (f64, f64, u64);
    let curves: [(&str, u32, f64, Point); 6] = [
        ("Local-1T", 1, 900_000.0, local_point),
        ("Local-2T", 2, 1_150_000.0, local_point),
        ("ReFlex-1T", 1, 900_000.0, reflex_point),
        ("ReFlex-2T", 2, 1_150_000.0, reflex_point),
        ("Libaio-1T", 1, 85_000.0, libaio_point),
        ("Libaio-2T", 2, 170_000.0, libaio_point),
    ];

    let mut sweep = Sweep::new("fig4_throughput");
    for (name, threads, peak, point) in curves {
        let curve = sweep.curve(name);
        curve.cutoff_p95_us(3_000.0);
        for frac in fracs {
            let offered = peak * frac;
            curve.point(move || {
                let (iops, p95, events) = point(threads, offered);
                PointOutcome::new(p95)
                    .with_row(format!(
                        "{name}\t{:.0}\t{:.0}\t{p95:.0}",
                        offered / 1e3,
                        iops / 1e3
                    ))
                    .with_metric("offered_iops", offered)
                    .with_metric("achieved_iops", iops)
                    .with_events(events)
            });
        }
    }
    let result = sweep.run();
    println!("# Figure 4: p95 latency vs throughput, 1KB read-only");
    println!("curve\toffered_kiops\tachieved_kiops\tp95_us");
    result.print_tsv();
    result.write_json_or_warn();
    reflex_bench::telemetry::flush("fig4_throughput");
}
