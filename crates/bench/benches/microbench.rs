//! Criterion microbenchmarks of the reproduction's hot structures: the
//! scheduling round (Algorithm 1), global-bucket atomics, histogram
//! inserts and queries, device submission, and wire-header codec. These
//! measure the *simulator's* own costs — useful when tuning harnesses —
//! and double as regression guards on algorithmic complexity.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use reflex_flash::{device_a, CmdId, FlashDevice, IoType, NvmeCommand};
use reflex_net::{Opcode, ReflexHeader};
use reflex_qos::{
    CostModel, CostedRequest, GlobalBucket, LoadMix, QosScheduler, SchedulerParams, SloSpec,
    TenantId, Tokens,
};
use reflex_sim::{Histogram, SimDuration, SimRng, SimTime};

fn sched_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_round");
    for tenants in [1u32, 16, 256, 2048] {
        group.bench_function(format!("{tenants}_lc_tenants"), |b| {
            let bucket = Arc::new(GlobalBucket::new(1));
            let mut sched: QosScheduler<u64> = QosScheduler::new(
                0,
                bucket,
                CostModel::for_device_a(),
                SchedulerParams::default(),
                SimTime::ZERO,
            );
            for t in 0..tenants {
                sched
                    .register_lc(
                        TenantId(t),
                        SloSpec::new(1_000, 100, SimDuration::from_millis(1)),
                        4096,
                    )
                    .expect("unique tenants");
            }
            let mut now = SimTime::ZERO;
            let mut i = 0u64;
            b.iter(|| {
                now = now + SimDuration::from_micros(10);
                i += 1;
                sched
                    .enqueue(
                        TenantId((i % tenants as u64) as u32),
                        CostedRequest { op: IoType::Read, len: 4096, payload: i },
                    )
                    .expect("registered");
                sched.schedule(now, LoadMix::Mixed)
            });
        });
    }
    group.finish();
}

fn bucket_ops(c: &mut Criterion) {
    let bucket = GlobalBucket::new(4);
    c.bench_function("bucket_give_take", |b| {
        b.iter(|| {
            bucket.give(Tokens::from_millitokens(1_500));
            bucket.take(Tokens::from_millitokens(1_000))
        })
    });
}

fn histogram_ops(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record_nanos(x % 10_000_000);
        })
    });
    c.bench_function("histogram_p95", |b| {
        let mut h = Histogram::new();
        let mut rng = SimRng::seed(1);
        for _ in 0..100_000 {
            h.record(rng.lognormal(SimDuration::from_micros(100), 0.5));
        }
        b.iter(|| h.p95())
    });
}

fn device_submit(c: &mut Criterion) {
    c.bench_function("flash_submit_poll", |b| {
        b.iter_batched(
            || {
                let mut d = FlashDevice::new(device_a(), SimRng::seed(3));
                let qp = d.create_queue_pair();
                (d, qp)
            },
            |(mut d, qp)| {
                let mut t = SimTime::ZERO;
                for i in 0..512u64 {
                    t = t + SimDuration::from_micros(2);
                    let addr = (i * 7919 % 100_000) * 4096;
                    d.submit(t, qp, NvmeCommand::read(CmdId(i), addr, 4096))
                        .expect("deep sq");
                    let _ = d.poll_completions(t, qp, 64);
                }
                d
            },
            BatchSize::SmallInput,
        )
    });
}

fn header_codec(c: &mut Criterion) {
    let hdr = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 42,
        cookie: 0xfeed_beef,
        addr: 123 << 12,
        len: 4096,
    };
    c.bench_function("header_encode_decode", |b| {
        b.iter(|| {
            let bytes = hdr.encode();
            ReflexHeader::decode(&bytes).expect("round trip")
        })
    });
}

criterion_group!(
    benches,
    sched_round,
    bucket_ops,
    histogram_ops,
    device_submit,
    header_codec
);
criterion_main!(benches);
