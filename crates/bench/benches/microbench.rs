//! Criterion microbenchmarks of the reproduction's hot structures: the
//! scheduling round (Algorithm 1), global-bucket atomics, histogram
//! inserts and queries, device submission, and wire-header codec. These
//! measure the *simulator's* own costs — useful when tuning harnesses —
//! and double as regression guards on algorithmic complexity.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use reflex_flash::{device_a, CmdId, FlashDevice, IoType, NvmeCommand};
use reflex_net::{Opcode, ReflexHeader};
use reflex_qos::{
    CostModel, CostedRequest, GlobalBucket, LoadMix, QosScheduler, SchedulerParams, SloSpec,
    TenantId, Tokens,
};
use reflex_sim::{Histogram, SimDuration, SimRng, SimTime};

fn sched_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_round");
    for tenants in [1u32, 16, 256, 2048] {
        group.bench_function(format!("{tenants}_lc_tenants"), |b| {
            let bucket = Arc::new(GlobalBucket::new(1));
            let mut sched: QosScheduler<u64> = QosScheduler::new(
                0,
                bucket,
                CostModel::for_device_a(),
                SchedulerParams::default(),
                SimTime::ZERO,
            );
            for t in 0..tenants {
                sched
                    .register_lc(
                        TenantId(t),
                        SloSpec::new(1_000, 100, SimDuration::from_millis(1)),
                        4096,
                    )
                    .expect("unique tenants");
            }
            let mut now = SimTime::ZERO;
            let mut i = 0u64;
            b.iter(|| {
                now += SimDuration::from_micros(10);
                i += 1;
                sched
                    .enqueue(
                        TenantId((i % tenants as u64) as u32),
                        CostedRequest {
                            op: IoType::Read,
                            len: 4096,
                            payload: i,
                        },
                    )
                    .expect("registered");
                sched.schedule(now, LoadMix::Mixed)
            });
        });
    }
    group.finish();
}

fn bucket_ops(c: &mut Criterion) {
    let bucket = GlobalBucket::new(4);
    c.bench_function("bucket_give_take", |b| {
        b.iter(|| {
            bucket.give(Tokens::from_millitokens(1_500));
            bucket.take(Tokens::from_millitokens(1_000))
        })
    });
}

fn histogram_ops(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record_nanos(x % 10_000_000);
        })
    });
    c.bench_function("histogram_p95", |b| {
        let mut h = Histogram::new();
        let mut rng = SimRng::seed(1);
        for _ in 0..100_000 {
            h.record(rng.lognormal(SimDuration::from_micros(100), 0.5));
        }
        b.iter(|| h.p95())
    });
}

fn device_submit(c: &mut Criterion) {
    c.bench_function("flash_submit_poll", |b| {
        b.iter_batched(
            || {
                let mut d = FlashDevice::new(device_a(), SimRng::seed(3));
                let qp = d.create_queue_pair();
                (d, qp)
            },
            |(mut d, qp)| {
                let mut t = SimTime::ZERO;
                for i in 0..512u64 {
                    t += SimDuration::from_micros(2);
                    let addr = (i * 7919 % 100_000) * 4096;
                    d.submit(t, qp, NvmeCommand::read(CmdId(i), addr, 4096))
                        .expect("deep sq");
                    let _ = d.poll_completions(t, qp, 64);
                }
                d
            },
            BatchSize::SmallInput,
        )
    });
}

fn header_codec(c: &mut Criterion) {
    let hdr = ReflexHeader {
        opcode: Opcode::Get,
        tenant: 42,
        cookie: 0xfeed_beef,
        addr: 123 << 12,
        len: 4096,
    };
    c.bench_function("header_encode_decode", |b| {
        b.iter(|| {
            let bytes = hdr.encode();
            ReflexHeader::decode(&bytes).expect("round trip")
        })
    });
    c.bench_function("header_encode_array_decode", |b| {
        b.iter(|| {
            let bytes = hdr.encode_array();
            ReflexHeader::decode(&bytes).expect("round trip")
        })
    });
}

/// Faithful replica of the pre-timer-wheel event queue: a `BinaryHeap` of
/// `Scheduled` nodes carrying the boxed closure inline (moved on every heap
/// sift), plus a per-dispatch pending `Vec` merged after each handler —
/// exactly the structure the seed engine used. Kept here as the reference
/// point for the `engine_dispatch` comparison.
mod baseline_heap {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use reflex_sim::{SimDuration, SimTime};

    pub type Event<W> = Box<dyn FnOnce(&mut W, &mut Ctx<W>)>;

    struct Scheduled<W> {
        at: SimTime,
        seq: u64,
        action: Event<W>,
    }

    impl<W> PartialEq for Scheduled<W> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<W> Eq for Scheduled<W> {}
    impl<W> PartialOrd for Scheduled<W> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<W> Ord for Scheduled<W> {
        // Max-heap inverted so the earliest (time, seq) pops first.
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct Ctx<W> {
        now: SimTime,
        pending: Vec<(SimTime, Event<W>)>,
    }

    impl<W> Ctx<W> {
        pub fn schedule_after(&mut self, delay: SimDuration, event: Event<W>) {
            self.pending.push((self.now + delay, event));
        }
    }

    pub struct Engine<W> {
        world: W,
        seq: u64,
        heap: BinaryHeap<Scheduled<W>>,
    }

    impl<W> Engine<W> {
        pub fn new(world: W) -> Self {
            Engine {
                world,
                seq: 0,
                heap: BinaryHeap::new(),
            }
        }

        pub fn world(&self) -> &W {
            &self.world
        }

        pub fn schedule_at(&mut self, at: SimTime, action: Event<W>) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Scheduled { at, seq, action });
        }

        pub fn run_to_completion(&mut self) {
            while let Some(Scheduled { at, action, .. }) = self.heap.pop() {
                let mut ctx = Ctx {
                    now: at,
                    pending: Vec::new(),
                };
                action(&mut self.world, &mut ctx);
                // Two-phase insert exactly like the old engine: handlers
                // stage into a pending Vec, merged after dispatch.
                for (when, ev) in ctx.pending {
                    self.schedule_at(when, ev);
                }
            }
        }
    }
}

/// Shared churn world: a `width`-wide event population with LCG-driven
/// delays, mostly inside a ~4ms horizon with an occasional far (8ms)
/// outlier. Width models how many events the testbed keeps in flight —
/// a loaded multi-tenant run holds thousands.
struct ChurnWorld {
    rng: u64,
    dispatched: u64,
    budget: u64,
    width: u64,
}

impl ChurnWorld {
    fn new(budget: u64, width: u64) -> Self {
        ChurnWorld {
            rng: 0x9e3779b97f4a7c15,
            dispatched: 0,
            budget,
            width,
        }
    }

    fn draw_delay(&mut self) -> Option<SimDuration> {
        if self.dispatched + self.width > self.budget {
            return None; // let the population drain
        }
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let nanos = if self.rng.is_multiple_of(61) {
            8_000_000 + self.rng % 1_000_000 // beyond the near-wheel horizon
        } else {
            200 + self.rng % 2_000_000
        };
        Some(SimDuration::from_nanos(nanos))
    }
}

/// One timer event on the real engine; re-schedules itself until the
/// world's budget is spent.
fn wheel_chain_event(w: &mut ChurnWorld, ctx: &mut reflex_sim::Ctx<'_, ChurnWorld>) {
    w.dispatched += 1;
    if let Some(delay) = w.draw_delay() {
        ctx.schedule_after(delay, wheel_chain_event);
    }
}

/// The same chain as a pooled typed event: no `Box` per schedule, the
/// variant payload lives inline in the recycled slab node.
#[derive(Clone, Copy)]
struct ChainTick;

impl reflex_sim::TypedEvent<ChurnWorld> for ChainTick {
    fn dispatch(self, w: &mut ChurnWorld, ctx: &mut reflex_sim::Ctx<'_, ChurnWorld, ChainTick>) {
        w.dispatched += 1;
        if let Some(delay) = w.draw_delay() {
            ctx.schedule_event_after(delay, ChainTick);
        }
    }
}

/// The same event against the baseline heap engine.
fn heap_chain_event(w: &mut ChurnWorld, ctx: &mut baseline_heap::Ctx<ChurnWorld>) {
    w.dispatched += 1;
    if let Some(delay) = w.draw_delay() {
        ctx.schedule_after(delay, Box::new(heap_chain_event));
    }
}

fn engine_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dispatch");
    for width in [64u64, 4096, 32768] {
        let budget = (width * 10).max(40_000);
        group.bench_function(format!("timer_wheel_{width}w"), |b| {
            b.iter(|| {
                let mut e = reflex_sim::Engine::new(ChurnWorld::new(budget, width));
                for i in 0..width {
                    e.schedule_at(SimTime::from_nanos(i * 100), wheel_chain_event);
                }
                e.run_to_completion();
                assert!(e.world().dispatched >= budget - width);
                e.world().dispatched
            })
        });
        group.bench_function(format!("typed_wheel_{width}w"), |b| {
            b.iter(|| {
                let mut e = reflex_sim::Engine::with_events(ChurnWorld::new(budget, width));
                for i in 0..width {
                    e.schedule_event_at(SimTime::from_nanos(i * 100), ChainTick);
                }
                e.run_to_completion();
                assert!(e.world().dispatched >= budget - width);
                e.world().dispatched
            })
        });
        group.bench_function(format!("baseline_binary_heap_{width}w"), |b| {
            b.iter(|| {
                let mut e = baseline_heap::Engine::new(ChurnWorld::new(budget, width));
                for i in 0..width {
                    e.schedule_at(SimTime::from_nanos(i * 100), Box::new(heap_chain_event));
                }
                e.run_to_completion();
                assert!(e.world().dispatched >= budget - width);
                e.world().dispatched
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    engine_dispatch,
    sched_round,
    bucket_ops,
    histogram_ops,
    device_submit,
    header_codec
);
criterion_main!(benches);
