//! Telemetry is an observer, not a participant: enabling it must leave
//! every simulation outcome — and therefore every figure TSV —
//! byte-identical. These tests run the same scenarios instrumented and
//! uninstrumented and diff the rendered rows, and pin the snapshot JSON
//! schema against a golden file.

use reflex_bench::chaos;
use reflex_bench::{run_testbed, telemetry, MEASURE, WARMUP};
use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::{SimDuration, SimTime};
use reflex_telemetry::{Stage, Telemetry, TenantKey};

/// Serializes the tests that flip the process-wide telemetry switch or
/// drain the global sink (cargo runs tests on parallel threads).
static GLOBAL_SINK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A fig4-style load sweep (one LC tenant, escalating open-loop load),
/// rendered exactly like the figure binaries render their rows.
fn fig4_style_rows(instrument: bool) -> String {
    let mut out = String::new();
    for offered in [50_000.0f64, 200_000.0, 400_000.0] {
        let mut tb = Testbed::builder().seed(42).server_threads(1).build();
        if instrument {
            tb.enable_telemetry();
        }
        let slo = SloSpec::new(400_000, 100, SimDuration::from_millis(2));
        let mut spec = WorkloadSpec::open_loop(
            "app",
            TenantId(1),
            TenantClass::LatencyCritical(slo),
            offered,
        );
        spec.io_size = 1024;
        spec.conns = 16;
        spec.client_threads = 4;
        tb.add_workload(spec).expect("admitted");
        tb.run(WARMUP);
        tb.begin_measurement();
        tb.run(MEASURE);
        let report = tb.report();
        let w = report.workload("app");
        out.push_str(&format!(
            "{offered:.0}\t{:.0}\t{:.1}\t{:.1}\t{}\n",
            w.iops,
            w.mean_read_us(),
            w.p95_read_us(),
            report.engine_events,
        ));
        // The instrumented run must actually have recorded something —
        // a no-op sink passing the diff would prove nothing.
        if instrument {
            let snap = report.telemetry.expect("telemetry enabled");
            assert!(snap.stage(TenantKey(1), Stage::Channel).is_some());
            assert!(snap.ios[&TenantKey(1)].completed > 0);
        } else {
            assert!(report.telemetry.is_none());
        }
    }
    out
}

#[test]
fn fig4_style_tsv_identical_with_and_without_telemetry() {
    assert_eq!(fig4_style_rows(false), fig4_style_rows(true));
}

#[test]
fn chaos_smoke_tsv_identical_with_and_without_global_sink() {
    let _guard = GLOBAL_SINK.lock().unwrap();
    // `run_faulted` always instruments its testbeds; the global sink
    // switch must not perturb the sweep either way.
    telemetry::force(Some(false));
    let off = chaos::build_sweep(true).run_with_threads(1);
    telemetry::force(Some(true));
    let on = chaos::build_sweep(true).run_with_threads(1);
    telemetry::force(None);
    let _ = telemetry::take(); // drop whatever the instrumented run merged
    assert_eq!(off.tsv(), on.tsv());
    // The chaos JSON carries the per-tenant SLO-violation count on every
    // point, instrumented or not.
    for result in [&off, &on] {
        for c in &result.curves {
            for p in &c.points {
                if c.label != "server-death" {
                    assert!(
                        p.metric("slo_violations").is_some(),
                        "curve {} missing slo_violations",
                        c.label
                    );
                }
            }
        }
    }
}

#[test]
fn run_testbed_merges_into_global_sink_only_when_enabled() {
    let _guard = GLOBAL_SINK.lock().unwrap();
    let mk = || {
        let mut tb = Testbed::builder().seed(7).server_threads(1).build();
        let slo = SloSpec::new(50_000, 100, SimDuration::from_micros(500));
        let spec = WorkloadSpec::open_loop(
            "app",
            TenantId(1),
            TenantClass::LatencyCritical(slo),
            20_000.0,
        );
        tb.add_workload(spec).expect("admitted");
        tb
    };
    telemetry::force(Some(false));
    let _ = telemetry::take();
    let quiet = run_testbed(mk(), Vec::new(), WARMUP, MEASURE);
    assert!(quiet.telemetry.is_none());
    assert!(
        telemetry::take().is_none(),
        "disabled run polluted the sink"
    );

    telemetry::force(Some(true));
    let loud = run_testbed(mk(), Vec::new(), WARMUP, MEASURE);
    telemetry::force(None);
    let snap = telemetry::take().expect("instrumented run merged a snapshot");
    assert!(!snap.is_empty());
    assert_eq!(
        loud.workload("app").iops,
        quiet.workload("app").iops,
        "instrumentation changed the simulation"
    );
    // Requests can still be in flight when the report snapshots (the
    // open-loop generator never drains mid-run), so conservation is an
    // inequality here; the soak test asserts exact balance after a
    // drain.
    let io = snap.ios[&TenantKey(1)];
    assert!(io.submitted >= io.completed + io.failed + io.retried);
    // Every request sitting in the device contributes an open span (more
    // may be open while queued ahead of submission).
    let in_device = io.submitted - (io.completed + io.failed + io.retried);
    assert!(
        io.open_spans >= in_device,
        "open spans {} < device backlog {in_device}",
        io.open_spans
    );
}

/// Pins the `reflex-telemetry-v1` snapshot JSON schema: a snapshot built
/// from fixed recordings must render byte-identically to the golden
/// file. Regenerate deliberately (and bump the schema tag) if the format
/// changes: the rendered JSON is printed on mismatch.
#[test]
fn snapshot_json_matches_golden_schema() {
    let telemetry = Telemetry::enabled();
    telemetry.count("device.commands", 3);
    telemetry.count("net.messages", 5);
    let t = TenantKey(1);
    telemetry.slo_register(t, SimDuration::from_micros(500));
    for (stage, nanos) in [
        (Stage::Ingress, 1_000),
        (Stage::NicQueue, 2_000),
        (Stage::Dataplane, 1_500),
        (Stage::FlashSq, 3_000),
        (Stage::Channel, 78_000),
        (Stage::Cq, 900),
    ] {
        telemetry.span_nanos(t, stage, nanos);
    }
    telemetry.span_nanos(TenantKey::GLOBAL, Stage::Fabric, 5_700);
    telemetry.span_nanos(TenantKey::GLOBAL, Stage::Egress, 5_700);
    for _ in 0..3 {
        telemetry.open_span(t);
        telemetry.note_submitted(t);
    }
    telemetry.note_completed(t);
    telemetry.close_span(t);
    telemetry.note_failed(t);
    telemetry.close_span(t);
    telemetry.note_retried(t);
    telemetry.close_span(t);
    // Two closed SLO windows, one violating its 500us target.
    let t0 = SimTime::ZERO;
    telemetry.slo_observe(t, SimDuration::from_micros(100), t0);
    telemetry.slo_observe(
        t,
        SimDuration::from_micros(120),
        t0 + SimDuration::from_millis(11),
    );
    telemetry.slo_observe(
        t,
        SimDuration::from_micros(900),
        t0 + SimDuration::from_millis(12),
    );
    telemetry.slo_observe(
        t,
        SimDuration::from_micros(950),
        t0 + SimDuration::from_millis(23),
    );
    let snapshot = telemetry.snapshot().expect("enabled");
    let json = snapshot.to_json();
    if std::env::var("REFLEX_BLESS").is_ok() {
        // Deliberate regeneration: REFLEX_BLESS=1 cargo test ... then
        // re-run without it so the compiled-in golden is compared.
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/telemetry_snapshot.json"
            ),
            &json,
        )
        .expect("write golden");
        return;
    }
    let golden = include_str!("golden/telemetry_snapshot.json");
    assert_eq!(
        json, golden,
        "snapshot schema drifted; rendered JSON:\n{json}"
    );
}
