//! Steady-state allocation budget for the hot request path.
//!
//! Installs the counting allocator from `reflex_sim::alloc_count` as this
//! binary's global allocator and measures two windows:
//!
//! 1. The engine alone: a self-rescheduling typed-event churn must run in
//!    recycled slab nodes and wheel slots — effectively zero allocations
//!    per dispatch once the population is built.
//! 2. End to end: a closed-loop testbed in steady state. Every per-IO
//!    structure (event nodes, in-flight slabs, scratch batch buffers, wire
//!    headers) is pooled, so allocations per completed IO must stay under a
//!    small fixed budget (amortized growth of long-lived containers and
//!    the 10ms control tick are all that remain).
//!
//! The counters are process-global, so everything runs inside a single
//! `#[test]` — no other test in this binary may allocate concurrently.

use reflex_core::{Testbed, WorkloadSpec};
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_sim::alloc_count::{allocations, CountingAlloc};
use reflex_sim::{Ctx, Engine, SimDuration, SimTime, TypedEvent};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct ChurnWorld {
    rng: u64,
    dispatched: u64,
    budget: u64,
    width: u64,
}

#[derive(Clone, Copy)]
struct ChainTick;

impl TypedEvent<ChurnWorld> for ChainTick {
    fn dispatch(self, w: &mut ChurnWorld, ctx: &mut Ctx<'_, ChurnWorld, ChainTick>) {
        w.dispatched += 1;
        if w.dispatched + w.width > w.budget {
            return; // drain
        }
        w.rng = w
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let nanos = 200 + w.rng % 2_000_000;
        ctx.schedule_event_after(SimDuration::from_nanos(nanos), ChainTick);
    }
}

fn engine_allocs_per_dispatch() -> f64 {
    let width = 1024u64;
    let budget = 200_000u64;
    let mut e = Engine::with_events(ChurnWorld {
        rng: 0x9e3779b97f4a7c15,
        dispatched: 0,
        budget,
        width,
    });
    for i in 0..width {
        e.schedule_event_at(SimTime::from_nanos(i * 100), ChainTick);
    }
    // Warm up: build the event population, the slab, and the wheel.
    e.run_for(SimDuration::from_millis(40));
    let warmed = e.world().dispatched;
    let before = allocations();
    e.run_to_completion();
    let after = allocations();
    let dispatched = e.world().dispatched - warmed;
    assert!(dispatched > budget / 2, "churn must mostly run post-warmup");
    (after - before) as f64 / dispatched as f64
}

fn testbed_allocs_per_io() -> f64 {
    let mut tb = Testbed::builder().server_threads(1).build();
    let tenant = TenantId(1);
    let slo = SloSpec::new(200_000, 100, SimDuration::from_millis(1));
    let mut spec =
        WorkloadSpec::closed_loop("alloc-probe", tenant, TenantClass::LatencyCritical(slo), 16);
    spec.conns = 4;
    spec.read_pct = 80;
    tb.add_workload(spec).expect("valid workload");
    // Warm up: connections fill their queue depth, pools and histograms
    // reach steady-state size.
    tb.run(SimDuration::from_millis(200));
    let ios_before = completed_ios(&tb);
    let before = allocations();
    tb.run(SimDuration::from_millis(300));
    let after = allocations();
    let ios = completed_ios(&tb) - ios_before;
    assert!(
        ios > 10_000,
        "steady-state window must carry real load: {ios}"
    );
    (after - before) as f64 / ios as f64
}

fn completed_ios(tb: &Testbed) -> u64 {
    let report = tb.report();
    report
        .threads
        .iter()
        .filter_map(|t| t.stats.as_ref())
        .map(|s| s.completed)
        .sum()
}

#[test]
fn steady_state_allocations_stay_within_budget() {
    let engine_rate = engine_allocs_per_dispatch();
    assert!(
        engine_rate < 0.01,
        "engine steady state must not allocate per dispatch: {engine_rate:.4} allocs/event"
    );

    let e2e_rate = testbed_allocs_per_io();
    eprintln!(
        "steady-state allocation rates: engine {engine_rate:.5} allocs/event, \
         end-to-end {e2e_rate:.5} allocs/IO"
    );
    assert!(
        e2e_rate < 0.05,
        "end-to-end steady state exceeded the allocation budget: {e2e_rate:.4} allocs/IO"
    );
}
