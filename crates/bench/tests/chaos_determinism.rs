//! The chaos sweep is bit-reproducible: fault draws come from private
//! RNG streams keyed by `(plan seed, event id)`, so the TSV — and every
//! per-point metric — is byte-identical no matter how many worker
//! threads execute the points (`REFLEX_BENCH_THREADS=1` vs `=8`).

use reflex_bench::chaos;

#[test]
fn chaos_tsv_is_byte_identical_across_thread_counts() {
    let serial = chaos::build_sweep(true).run_with_threads(1);
    let parallel = chaos::build_sweep(true).run_with_threads(8);

    assert_eq!(serial.tsv(), parallel.tsv());

    // The aggregated fault totals (the JSON `faults` section) match too.
    assert_eq!(
        chaos::faults_summary(&serial),
        chaos::faults_summary(&parallel)
    );

    // And so does every per-point metric, not just the rendered rows.
    for (sc, pc) in serial.curves.iter().zip(&parallel.curves) {
        assert_eq!(sc.label, pc.label);
        assert_eq!(sc.points.len(), pc.points.len());
        for (sp, pp) in sc.points.iter().zip(&pc.points) {
            assert_eq!(sp.metrics, pp.metrics, "curve {}", sc.label);
        }
    }
}

#[test]
fn chaos_smoke_recovers_everything() {
    let result = chaos::build_sweep(true).run_with_threads(2);
    let summary = chaos::faults_summary(&result);
    assert!(summary.injected > 0, "smoke plan must inject faults");
    assert_eq!(
        summary.unrecovered, 0,
        "smoke faults must all be recovered: {summary:?}"
    );
    assert!(summary.recovered > 0, "retries must have salvaged requests");
}
