//! The replication figure is bit-reproducible across shard counts, and
//! its panels carry the claims the figure exists to make: quorum reads
//! cost more than single-copy reads, and failover recovery does not get
//! worse as the replication factor grows.

use reflex_bench::replication;

#[test]
fn replication_figure_is_byte_identical_across_shard_counts() {
    let single = replication::build_sweep(true, 1).run_with_threads(1);
    let sharded = replication::build_sweep(true, 4).run_with_threads(2);

    assert_eq!(replication::render(&single), replication::render(&sharded));

    // Every per-point metric matches too, not just the rendered rows.
    for (sc, pc) in single.curves.iter().zip(&sharded.curves) {
        assert_eq!(sc.label, pc.label);
        assert_eq!(sc.points.len(), pc.points.len());
        for (sp, pp) in sc.points.iter().zip(&pc.points) {
            assert_eq!(sp.metrics, pp.metrics, "curve {}", sc.label);
        }
    }
}

#[test]
fn replication_costs_show_and_failover_recovers() {
    let result = replication::build_sweep(true, 1).run();

    // Panel 1: replicated quorum reads are never cheaper than
    // single-copy primary reads at the same offered load.
    let single = &result.curve("R1-primary").points;
    let quorum3 = &result.curve("R3-quorum").points;
    assert_eq!(single.len(), quorum3.len());
    for (s, q) in single.iter().zip(quorum3) {
        let (sm, qm) = (
            s.metric("mean_read_us").unwrap(),
            q.metric("mean_read_us").unwrap(),
        );
        assert!(
            qm > sm,
            "R=3 quorum mean read {qm:.1}us should exceed single-copy {sm:.1}us"
        );
    }

    // Panel 2: both failover runs recover, and recovery does not get
    // worse with more replicas (R=3 has a surviving quorum throughout,
    // so it must do at least as well as R=2).
    let rec = |label: &str| {
        let p = &result.curve(label).points[0];
        (
            p.metric("recovery_ms").unwrap(),
            p.metric("slo_violations").unwrap(),
        )
    };
    let (rec2, viol2) = rec("failover-R2");
    let (rec3, viol3) = rec("failover-R3");
    assert!(rec2 >= 0.0, "R=2 must recover (got {rec2})");
    assert!(rec3 >= 0.0, "R=3 must recover (got {rec3})");
    assert!(
        rec3 <= rec2 + 10.0,
        "recovery should not degrade with more replicas: R=3 {rec3}ms vs R=2 {rec2}ms"
    );

    // Panel 3: the outage is visible to the SLO monitor.
    assert!(viol2 >= 1.0, "R=2 failover must register SLO violations");
    assert!(viol3 >= 1.0, "R=3 failover must register SLO violations");
}
