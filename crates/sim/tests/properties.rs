//! Property-based tests of the simulation substrate.

use proptest::prelude::*;
use reflex_sim::{Engine, Histogram, PoolKey, SimDuration, SimRng, SimTime, SlabPool, Zipf};

proptest! {
    /// Histogram percentiles are monotone in the percentile for any input.
    #[test]
    fn histogram_percentiles_monotone(values in prop::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for v in &values {
            h.record_nanos(*v);
        }
        let mut prev = 0u64;
        for pct in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(pct).as_nanos();
            prop_assert!(v >= prev, "p{pct} = {v} < {prev}");
            prev = v;
        }
    }

    /// Percentiles stay within the observed min/max and carry bounded
    /// relative error at the extremes.
    #[test]
    fn histogram_percentiles_bounded(values in prop::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        let mut min = u64::MAX;
        let mut max = 0u64;
        for v in &values {
            h.record_nanos(*v);
            min = min.min(*v);
            max = max.max(*v);
        }
        prop_assert!(h.percentile(0.0).as_nanos() >= min.saturating_sub(min / 32));
        prop_assert!(h.percentile(100.0).as_nanos() <= max + max / 32 + 1);
    }

    /// Merging two histograms equals recording the union of their samples
    /// (same counts, same percentile answers).
    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(1u64..1_000_000_000, 1..200),
        b in prop::collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for v in &a { ha.record_nanos(*v); hu.record_nanos(*v); }
        for v in &b { hb.record_nanos(*v); hu.record_nanos(*v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for pct in [50.0, 95.0, 99.0] {
            prop_assert_eq!(ha.percentile(pct), hu.percentile(pct));
        }
        prop_assert_eq!(ha.mean(), hu.mean());
    }

    /// Engine: events fire in exactly time order regardless of insertion
    /// order, with FIFO tie-breaking by insertion sequence.
    #[test]
    fn engine_orders_arbitrary_schedules(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<(u64, usize)>, ctx| {
                w.push((ctx.now().as_nanos(), i));
            });
        }
        engine.run_to_completion();
        let fired = engine.world();
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// SimRng streams are reproducible and fork-independent.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed(seed);
        let mut b = SimRng::seed(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut f1 = a.fork();
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| f1.next_u64()).collect();
        prop_assert_ne!(xs, ys);
    }

    /// Exponential samples are non-negative and bounded-mean-ish; Zipf
    /// samples stay in range.
    #[test]
    fn distributions_well_formed(seed in any::<u64>(), n in 2u64..100_000, theta in 0.01f64..0.99) {
        let mut rng = SimRng::seed(seed);
        let mean = SimDuration::from_micros(50);
        for _ in 0..64 {
            let d = rng.exponential(mean);
            prop_assert!(d.as_nanos() < 10_000_000_000, "absurd exponential draw");
        }
        let z = Zipf::new(n, theta);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Duration arithmetic: float round trips stay within a nanosecond.
    #[test]
    fn duration_float_round_trip(us in 0.0f64..1e9) {
        let d = SimDuration::from_micros_f64(us);
        let back = d.as_micros_f64();
        prop_assert!((back - us).abs() <= 0.001, "{us} -> {back}");
    }

    /// The timer-wheel queue dispatches exactly like a sorted reference
    /// model under random schedules spanning the near wheel and the far
    /// heap, including chained events and mid-run cancellations.
    #[test]
    fn timer_wheel_matches_reference_heap(times in prop::collection::vec(0u64..20_000_000, 1..150)) {
        let times = std::sync::Arc::new(times);

        // Drive the real engine. Handlers follow fixed rules keyed on the
        // event id so the reference model can replay them exactly:
        // id % 3 == 0 chains a follow-up, id % 5 == 0 cancels a target
        // picked from every handle created so far.
        let mut engine = Engine::new(WheelWorld::default());
        for (i, &t) in times.iter().enumerate() {
            let h = engine.schedule_at_handle(SimTime::from_nanos(t), wheel_handler(i as u64, times.clone()));
            engine.world_mut().handles.push(h);
            engine.world_mut().next_id += 1;
        }
        engine.run_to_completion();

        // Replay the same rules against a sort-based reference queue.
        let mut model = RefModel::default();
        for &t in times.iter() {
            model.schedule(t);
        }
        while let Some((at, id)) = model.pop() {
            model.log.push(id);
            if id % 3 == 0 {
                let d = times[id as usize % times.len()] % 10_000_000;
                model.schedule(at + d);
            }
            if id % 5 == 0 && !model.handles.is_empty() {
                let target = model.handles[id as usize * 7 % model.handles.len()];
                let ok = model.cancel(target);
                model.cancel_results.push(ok);
            }
        }

        prop_assert_eq!(&engine.world().log, &model.log);
        prop_assert_eq!(&engine.world().cancel_results, &model.cancel_results);
    }

    /// Histogram merge is commutative: a∪b and b∪a are the same
    /// histogram, bucket for bucket (telemetry folds sweep-worker
    /// snapshots in arbitrary order and relies on this).
    #[test]
    fn histogram_merge_commutative(
        a in prop::collection::vec(1u64..1_000_000_000, 0..200),
        b in prop::collection::vec(1u64..1_000_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for v in &a { ha.record_nanos(*v); }
        for v in &b { hb.record_nanos(*v); }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge is associative: (a∪b)∪c == a∪(b∪c), so any fold
    /// tree over partial snapshots yields the same result.
    #[test]
    fn histogram_merge_associative(
        a in prop::collection::vec(1u64..1_000_000_000, 0..150),
        b in prop::collection::vec(1u64..1_000_000_000, 0..150),
        c in prop::collection::vec(1u64..1_000_000_000, 0..150),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for v in &a { ha.record_nanos(*v); }
        for v in &b { hb.record_nanos(*v); }
        for v in &c { hc.record_nanos(*v); }
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The sparse wire encoding round-trips every histogram exactly,
    /// and decode rejects arbitrary truncations of a valid image.
    #[test]
    fn histogram_encode_round_trip(
        values in prop::collection::vec(1u64..u64::MAX / 2, 0..300),
        cut in any::<usize>(),
    ) {
        let mut h = Histogram::new();
        for v in &values { h.record_nanos(*v); }
        let bytes = h.encode();
        let back = Histogram::decode(&bytes);
        prop_assert_eq!(back.as_ref(), Some(&h));
        // Any strict prefix must fail cleanly, never panic or produce a
        // histogram that silently lost samples.
        if bytes.len() > 1 {
            let cut = 1 + cut % (bytes.len() - 1);
            prop_assert_eq!(Histogram::decode(&bytes[..cut]), None);
        }
    }

    /// Slab slot reuse never aliases a live entry: under arbitrary
    /// insert/take interleavings, every live key keeps resolving to its
    /// own value, retired keys (whose slots may have been recycled many
    /// times) always miss, and keys survive the u64 cookie round trip the
    /// dataplane and testbed use on the wire.
    #[test]
    fn slab_reuse_never_aliases_live_entries(
        ops in prop::collection::vec((0u8..4, any::<u64>(), any::<u64>()), 1..300),
    ) {
        let mut pool: SlabPool<u64> = SlabPool::new();
        let mut live: Vec<(PoolKey, u64)> = Vec::new();
        let mut retired: Vec<PoolKey> = Vec::new();
        for (op, idx, val) in ops {
            match op {
                // Weighted toward inserts so slots churn through reuse.
                0 | 1 => {
                    let key = pool.insert(val);
                    prop_assert_eq!(PoolKey::from_u64(key.as_u64()), key);
                    prop_assert!(
                        !live.iter().any(|(k, _)| *k == key),
                        "fresh key aliases a live entry"
                    );
                    live.push((key, val));
                }
                2 => {
                    let Some(i) = (!live.is_empty()).then(|| idx as usize % live.len()) else {
                        continue;
                    };
                    let (key, val) = live.swap_remove(i);
                    prop_assert_eq!(pool.take(key), Some(val));
                    prop_assert_eq!(pool.take(key), None, "double take must miss");
                    retired.push(key);
                }
                _ => {
                    let Some(i) = (!retired.is_empty()).then(|| idx as usize % retired.len()) else {
                        continue;
                    };
                    let key = retired[i];
                    prop_assert!(pool.get(key).is_none(), "stale key resolved");
                    prop_assert!(pool.take(key).is_none(), "stale key took a value");
                }
            }
            for (k, v) in &live {
                prop_assert_eq!(pool.get(*k), Some(v), "live entry lost or aliased");
            }
        }
        prop_assert_eq!(pool.len(), live.len());
    }
}

/// World for [`timer_wheel_matches_reference_heap`]'s engine side.
#[derive(Default)]
struct WheelWorld {
    log: Vec<u64>,
    cancel_results: Vec<bool>,
    handles: Vec<reflex_sim::EventHandle>,
    next_id: u64,
}

/// One event of the wheel-vs-reference property, as a boxed handler so it
/// can chain follow-ups recursively.
fn wheel_handler(id: u64, times: std::sync::Arc<Vec<u64>>) -> reflex_sim::EventFn<WheelWorld> {
    Box::new(move |w, ctx| {
        w.log.push(id);
        if id.is_multiple_of(3) {
            let next_id = w.next_id;
            w.next_id += 1;
            let d = times[id as usize % times.len()] % 10_000_000;
            let h = ctx.schedule_after_handle(
                SimDuration::from_nanos(d),
                wheel_handler(next_id, times.clone()),
            );
            w.handles.push(h);
        }
        if id.is_multiple_of(5) && !w.handles.is_empty() {
            let target = w.handles[id as usize * 7 % w.handles.len()];
            let ok = ctx.cancel(target);
            w.cancel_results.push(ok);
        }
    })
}

/// Sorted-scan reference queue: ids are assigned in schedule order and
/// double as the FIFO tie-break, exactly like the engine's internal seq.
#[derive(Default)]
struct RefModel {
    pending: Vec<(u64, u64)>,
    log: Vec<u64>,
    cancel_results: Vec<bool>,
    handles: Vec<u64>,
    seq: u64,
}

impl RefModel {
    fn schedule(&mut self, at: u64) -> u64 {
        let id = self.seq;
        self.seq += 1;
        self.pending.push((at, id));
        self.handles.push(id);
        id
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, id))| (at, id))
            .map(|(i, _)| i)?;
        Some(self.pending.swap_remove(best))
    }

    fn cancel(&mut self, id: u64) -> bool {
        match self.pending.iter().position(|&(_, pid)| pid == id) {
            Some(pos) => {
                self.pending.swap_remove(pos);
                true
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded runner: policy equivalence on randomized topologies.

use reflex_sim::{Ctx, LookaheadPolicy, NoEvent, ShardTopology, ShardWorld, ShardedEngine};

/// Toy shard world driven by a pre-generated schedule: each tick stages a
/// flight to a fixed destination shard; arrivals fold into an
/// order-sensitive checksum, so any difference in merge order between two
/// runs changes the final state.
struct RandWorld {
    shard: usize,
    staged: Vec<(usize, (u64, usize, u64))>,
    received: Vec<(u64, usize, u64)>,
    checksum: u64,
}

impl ShardWorld<NoEvent> for RandWorld {
    type Flight = (u64, usize, u64);

    fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>) {
        sink.append(&mut self.staged);
    }

    fn deliver(&mut self, _ctx: &mut Ctx<'_, Self, NoEvent>, flights: &mut Vec<Self::Flight>) {
        flights.sort_unstable();
        for f in flights.drain(..) {
            // Order-sensitive fold: commutative-only bugs would hide from a
            // plain sum.
            self.checksum = self
                .checksum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(f.0 ^ (f.1 as u64) << 40 ^ f.2);
            self.received.push(f);
        }
    }
}

/// One sender: from its owner shard, `ticks` flights to `dst`, one every
/// `period` nanoseconds starting at `period`.
#[derive(Debug, Clone)]
struct Sender {
    dst: usize,
    period: u64,
    ticks: u64,
}

const WINDOW: u64 = 1_000;
const MAX_SHARDS: usize = 6;

/// Fixed-size raw strategy ([`MAX_SHARDS`] shard slots, destinations drawn
/// wide); [`clamp_senders`] folds it onto the drawn shard count.
fn sender_strategy() -> impl Strategy<Value = Vec<Vec<Sender>>> {
    let one = (0usize..64, 500u64..4_000, 1u64..20).prop_map(|(dst, period, ticks)| Sender {
        dst,
        period,
        ticks,
    });
    prop::collection::vec(prop::collection::vec(one, 0..3), MAX_SHARDS..MAX_SHARDS + 1)
}

fn clamp_senders(raw: &[Vec<Sender>], shards: usize) -> Vec<Vec<Sender>> {
    raw[..shards]
        .iter()
        .map(|list| {
            list.iter()
                .map(|s| Sender {
                    dst: s.dst % shards,
                    ..s.clone()
                })
                .collect()
        })
        .collect()
}

/// Per-shard final state: (checksum, received flights in merge order).
type PolicyOutcome = Vec<(u64, Vec<(u64, usize, u64)>)>;

fn run_policy(
    shards: usize,
    senders: &[Vec<Sender>],
    policy: LookaheadPolicy,
    with_topology: bool,
) -> PolicyOutcome {
    let engines: Vec<Engine<RandWorld>> = (0..shards)
        .map(|shard| {
            let mut eng = Engine::new(RandWorld {
                shard,
                staged: Vec::new(),
                received: Vec::new(),
                checksum: 0,
            });
            for s in &senders[shard] {
                if s.dst == shard {
                    continue; // intra-shard traffic never crosses the exchange
                }
                let dst = s.dst;
                for i in 1..=s.ticks {
                    eng.schedule_at(
                        SimTime::from_nanos(i * s.period),
                        move |w: &mut RandWorld, ctx| {
                            w.staged.push((dst, (ctx.now().as_nanos(), w.shard, i)));
                        },
                    );
                }
            }
            eng
        })
        .collect();
    let mut se = ShardedEngine::new(engines, SimDuration::from_nanos(WINDOW));
    if with_topology {
        // Pair matrix derived from the actual senders: a conservative
        // superset of the traffic (exactly the fabric's link accounting).
        let mut pair = vec![vec![None; shards]; shards];
        for (src, list) in senders.iter().enumerate() {
            for s in list {
                if s.dst != src {
                    pair[src][s.dst] = Some(SimDuration::from_nanos(WINDOW));
                }
            }
        }
        se.set_topology(ShardTopology::from_pair_matrix(pair));
    }
    se.set_policy(policy);
    se.run_for(SimDuration::from_nanos(40_000));
    (0..shards)
        .map(|i| {
            let w = se.engine(i).world();
            (w.checksum, w.received.clone())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The adaptive policy (event-horizon extension over the per-link
    /// topology) merges cross-shard flights in exactly the same order as
    /// the conservative one-barrier-per-window baseline, for randomized
    /// shard counts, link matrices and event schedules — with and without
    /// link accounting installed.
    #[test]
    fn adaptive_policy_equals_global_min_on_random_topologies(
        shards in 2usize..MAX_SHARDS + 1,
        raw in sender_strategy(),
    ) {
        let senders = clamp_senders(&raw, shards);
        let baseline = run_policy(shards, &senders, LookaheadPolicy::GlobalMin, false);
        for with_topology in [false, true] {
            let adaptive = run_policy(shards, &senders, LookaheadPolicy::Adaptive, with_topology);
            prop_assert_eq!(&baseline, &adaptive, "with_topology={}", with_topology);
        }
        // The topology must also leave the baseline untouched.
        let baseline_topo = run_policy(shards, &senders, LookaheadPolicy::GlobalMin, true);
        prop_assert_eq!(&baseline, &baseline_topo);
    }
}
