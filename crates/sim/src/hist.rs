//! Log-bucketed latency histograms (HDR-histogram style).
//!
//! [`Histogram`] records `u64` values (we use nanoseconds) into
//! logarithmically spaced buckets with a configurable number of significant
//! sub-buckets per power of two, giving bounded relative error at every
//! percentile while staying O(1) per insert and compact in memory — exactly
//! what a million-IOPS simulation needs.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Sub-bucket resolution: 64 linear sub-buckets per power of two bounds the
/// relative quantile error at ~1.6%, well below the run-to-run noise of the
/// experiments.
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Values up to 2^40 ns (~18 minutes) are representable, far beyond any
/// simulated latency.
const MAX_EXP: usize = 40;
const BUCKET_COUNT: usize = (MAX_EXP + 1 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// A mergeable, log-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use reflex_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in 1..=100u64 {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 100);
/// let p95 = h.percentile(95.0).as_micros_f64();
/// assert!((94.0..=97.0).contains(&p95));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_us", &(self.mean().as_micros_f64()))
            .field("p95_us", &self.percentile(95.0).as_micros_f64())
            .field("max_us", &(self.max as f64 / 1e3))
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_for(value: u64) -> usize {
        // Values below SUB_BUCKETS land in the first linear region.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        let bucket_base = (msb - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS;
        (bucket_base + sub).min(BUCKET_COUNT - 1)
    }

    fn value_for(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let bucket = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        // Midpoint of the sub-bucket range keeps quantiles unbiased.
        let shift = bucket - 1;
        let base = (SUB_BUCKETS as u64 + sub) << shift;
        let width = 1u64 << shift;
        base + width / 2
    }

    /// Records a raw nanosecond value.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::index_for(nanos)] += 1;
        self.count += 1;
        self.sum += nanos as u128;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Records a duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.record_nanos(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded samples (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / self.count as u128) as u64)
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// Value at the given percentile in `[0, 100]` (zero when empty).
    ///
    /// The answer carries the histogram's bounded relative error (~1.6%).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `[0, 100]`.
    pub fn percentile(&self, pct: f64) -> SimDuration {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile {pct} out of range"
        );
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp the bucket midpoint to the observed extremes so
                // sparse histograms don't report values never seen.
                let v = Self::value_for(i).clamp(self.min, self.max);
                return SimDuration::from_nanos(v);
            }
        }
        SimDuration::from_nanos(self.max)
    }

    /// Median (p50).
    pub fn p50(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// 95th percentile — the paper's headline tail metric.
    pub fn p95(&self) -> SimDuration {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimDuration {
        self.percentile(99.9)
    }

    /// Merges the samples of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Serializes the histogram into a compact sparse byte string: a
    /// version tag, the summary fields, then `(bucket index, count)` pairs
    /// for the occupied buckets only, all little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let occupied = self.buckets.iter().filter(|&&c| c != 0).count();
        let mut out = Vec::with_capacity(1 + 8 + 16 + 8 + 8 + 4 + occupied * 12);
        out.push(1u8); // format version
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&(occupied as u32).to_le_bytes());
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                out.extend_from_slice(&(i as u32).to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Reconstructs a histogram from [`encode`](Self::encode) output.
    /// Returns `None` on truncated, malformed, or inconsistent input.
    pub fn decode(bytes: &[u8]) -> Option<Histogram> {
        fn take<const N: usize>(b: &mut &[u8]) -> Option<[u8; N]> {
            let (head, rest) = b.split_at_checked(N)?;
            *b = rest;
            head.try_into().ok()
        }
        let mut b = bytes;
        if take::<1>(&mut b)? != [1] {
            return None;
        }
        let count = u64::from_le_bytes(take(&mut b)?);
        let sum = u128::from_le_bytes(take(&mut b)?);
        let min = u64::from_le_bytes(take(&mut b)?);
        let max = u64::from_le_bytes(take(&mut b)?);
        let entries = u32::from_le_bytes(take(&mut b)?);
        let mut h = Histogram::new();
        let mut total = 0u64;
        let mut last_index = None;
        for _ in 0..entries {
            let index = u32::from_le_bytes(take(&mut b)?) as usize;
            let c = u64::from_le_bytes(take(&mut b)?);
            // Indices must be strictly increasing, in range, and non-empty.
            if index >= BUCKET_COUNT || c == 0 || last_index.is_some_and(|l| index <= l) {
                return None;
            }
            last_index = Some(index);
            h.buckets[index] = c;
            total = total.checked_add(c)?;
        }
        if !b.is_empty() || total != count || (count == 0) != (min == u64::MAX) {
            return None;
        }
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p95(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn single_value_percentiles() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(250));
        for pct in [0.0, 50.0, 95.0, 99.9, 100.0] {
            let v = h.percentile(pct).as_micros_f64();
            assert!((v - 250.0).abs() / 250.0 < 0.02, "pct {pct} gave {v}");
        }
        assert_eq!(h.mean(), SimDuration::from_micros(250));
    }

    #[test]
    fn uniform_percentiles_are_accurate() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for (pct, expect) in [(50.0, 5_000.0), (95.0, 9_500.0), (99.0, 9_900.0)] {
            let got = h.percentile(pct).as_micros_f64();
            assert!(
                (got - expect).abs() / expect < 0.03,
                "p{pct}: got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Every representable value must round-trip within one sub-bucket.
        for v in [1u64, 63, 64, 65, 1_000, 123_456, 10_000_000, 1 << 35] {
            let idx = Histogram::index_for(v);
            let back = Histogram::value_for(idx);
            let rel = (back as f64 - v as f64).abs() / v as f64;
            assert!(rel < 0.02, "value {v} -> {back} rel err {rel}");
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(1_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let min = a.min().as_micros_f64();
        let max = a.max().as_micros_f64();
        assert!((min - 10.0).abs() < 0.5);
        assert!((max - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(5));
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 5_000_000;
            h.record_nanos(x.max(1));
        }
        let mut prev = 0.0;
        for pct in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(pct).as_micros_f64();
            assert!(v >= prev, "p{pct} = {v} < previous {prev}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        let h = Histogram::new();
        let _ = h.percentile(101.0);
    }
}
