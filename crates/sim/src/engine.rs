//! The discrete-event engine.
//!
//! [`Engine`] owns a user-supplied *world* (the mutable simulation state) and
//! a time-ordered queue of events. An event is a one-shot closure that
//! receives exclusive access to the world plus a [`Ctx`] handle for
//! scheduling follow-up events. Events at the same instant run in FIFO
//! scheduling order, which makes runs fully deterministic.
//!
//! # Queue internals
//!
//! The queue is a two-level hierarchical timer wheel rather than a binary
//! heap. Events land in one of three places based on how far ahead of the
//! wheel cursor they are:
//!
//! * a **current** min-heap for events inside the cursor's ~1&micro;s tick
//!   (this is where same-instant FIFO ordering is resolved),
//! * a **near wheel** of [`WHEEL_SLOTS`] buckets, one per tick, covering the
//!   next ~4ms — insert and cancel are O(1) here, and advancing the cursor
//!   is a bitmap scan,
//! * a **far** min-heap for everything beyond the wheel horizon, re-homed
//!   into the wheel in batches as the cursor advances.
//!
//! Event closures live in a slab with an intrusive free list, so steady-state
//! scheduling reuses nodes and bucket capacity instead of allocating.
//! [`EventHandle`]s are generation-checked indexes into that slab, which
//! makes cancellation O(1) and ABA-safe.
//!
//! # Typed events
//!
//! Boxed closures cost one heap allocation per schedule. Hot recurring
//! events (packet arrivals, NIC polls, flash completions, timeouts) can
//! instead be described by a plain `enum` implementing [`TypedEvent`] and
//! scheduled with the `schedule_event_*` methods: the enum value is stored
//! inline in the slab node, so steady-state scheduling allocates nothing.
//! An engine built with [`Engine::new`] uses the uninhabited [`NoEvent`]
//! type and supports only closures; [`Engine::with_events`] selects the
//! typed-event world. Both kinds share one queue, one clock and one FIFO
//! order, and closures remain available as a cold fallback for rare
//! one-off events.
//!
//! # Examples
//!
//! ```
//! use reflex_sim::{Engine, SimDuration, SimTime};
//!
//! let mut engine = Engine::new(0u32);
//! engine.schedule_after(SimDuration::from_micros(5), |count, ctx| {
//!     *count += 1;
//!     // Chain a follow-up event 5us later.
//!     ctx.schedule_after(SimDuration::from_micros(5), |count, _| *count += 10);
//! });
//! engine.run_until(SimTime::from_micros(100));
//! assert_eq!(*engine.world(), 11);
//! // The clock advances to the deadline once the queue drains.
//! assert_eq!(engine.now(), SimTime::from_micros(100));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A one-shot event handler over world `W`.
///
/// Handlers are `Send` so a whole `Engine` (with its queued events) can be
/// moved to — or borrowed by — a worker thread by the sharded runner.
pub type EventFn<W, E = NoEvent> = Box<dyn for<'e> FnOnce(&mut W, &mut Ctx<'e, W, E>) + Send>;

/// A plain-data event dispatched without boxing.
///
/// Implement this on a cheap (ideally `Copy`) enum describing the hot
/// recurring events of a simulation, then schedule values of it with
/// [`Ctx::schedule_event_at`] and friends. Dispatch stores the value
/// inline in the queue's node slab — no per-event heap allocation.
pub trait TypedEvent<W>: 'static {
    /// Consumes the event, applying it to the world.
    fn dispatch(self, world: &mut W, ctx: &mut Ctx<'_, W, Self>)
    where
        Self: Sized;
}

/// The uninhabited typed-event type of closure-only engines.
///
/// [`Engine::new`] produces `Engine<W, NoEvent>`, so existing closure-based
/// code needs no type annotations; `NoEvent` values cannot be constructed,
/// and its dispatch arm is statically unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoEvent {}

impl<W> TypedEvent<W> for NoEvent {
    fn dispatch(self, _world: &mut W, _ctx: &mut Ctx<'_, W, Self>) {
        match self {}
    }
}

/// What a slab node runs at dispatch: an inline typed event (hot path,
/// allocation-free) or a boxed closure (cold fallback).
enum Action<W, E> {
    Typed(E),
    Boxed(EventFn<W, E>),
}

/// Nanoseconds per wheel tick, as a shift: 1024ns, or roughly 1us.
const TICK_SHIFT: u32 = 10;
/// Number of near-wheel buckets; the wheel spans `WHEEL_SLOTS << TICK_SHIFT`
/// nanoseconds (~4.2ms) ahead of the cursor.
const WHEEL_SLOTS: usize = 4096;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;
/// Sentinel for "no node" in the slab free list.
const NIL: u32 = u32::MAX;

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

/// A cancellable reference to a scheduled event.
///
/// Returned by the `*_handle` scheduling methods. Handles are
/// generation-checked: once the event has run or been cancelled, the handle
/// goes stale and further [`Engine::cancel`]/[`Ctx::cancel`] calls return
/// `false`, even if the underlying slab slot has been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    index: u32,
    gen: u32,
}

/// Where a live node's (time, seq, index) entry currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In the `current` heap; cancellation is lazy (skipped on pop).
    Current,
    /// In a near-wheel bucket; cancellation eagerly removes the entry.
    Wheel,
    /// In the `far` heap; cancellation is lazy (skipped on pop/re-home).
    Far,
}

/// Slab node holding one scheduled event.
struct Node<W, E> {
    at: SimTime,
    seq: u64,
    /// Bumped every time the node is freed; stale handles mismatch.
    gen: u32,
    loc: Loc,
    /// `None` once dispatched or cancelled.
    action: Option<Action<W, E>>,
    /// Free-list link, `NIL` while the node is live.
    next_free: u32,
}

/// The two-level timer-wheel event queue.
///
/// Ordering invariants:
/// * every event in `current` is earlier than every event in a wheel bucket
///   (current holds ticks `<= base_tick`, the wheel holds ticks
///   `(base_tick, base_tick + WHEEL_SLOTS)`),
/// * every event in the wheel is earlier than every event in `far`
///   (`far` only holds ticks `>= base_tick + WHEEL_SLOTS`; `advance_to`
///   re-homes far events whenever `base_tick` moves forward).
struct EventQueue<W, E> {
    nodes: Vec<Node<W, E>>,
    free_head: u32,
    /// Per-slot buckets of slab indexes; capacity is retained across drains.
    wheel: Vec<Vec<u32>>,
    /// One bit per slot: does the bucket contain any entry?
    occupancy: [u64; WHEEL_WORDS],
    /// Live entries currently stored in wheel buckets.
    wheel_count: usize,
    /// Tick the wheel cursor is parked on.
    base_tick: u64,
    /// Events at or before the cursor tick, ordered by (time, seq).
    current: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Events beyond the wheel horizon, ordered by (time, seq).
    far: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Live (scheduled, not yet dispatched or cancelled) events.
    len: usize,
    /// Monotonic tie-break so same-instant events run in schedule order.
    seq: u64,
}

/// Outcome of asking the queue for its next event.
enum Pop<W, E> {
    /// The earliest live event, removed from the queue.
    Event { at: SimTime, action: Action<W, E> },
    /// The earliest live event is after the deadline; nothing was removed.
    Deadline,
    /// No live events at all.
    Empty,
}

impl<W, E> EventQueue<W, E> {
    fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free_head: NIL,
            wheel: vec![Vec::new(); WHEEL_SLOTS],
            occupancy: [0; WHEEL_WORDS],
            wheel_count: 0,
            base_tick: 0,
            current: BinaryHeap::new(),
            far: BinaryHeap::new(),
            len: 0,
            seq: 0,
        }
    }

    fn alloc(&mut self, at: SimTime, seq: u64, action: Action<W, E>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next_free;
            node.at = at;
            node.seq = seq;
            node.action = Some(action);
            node.next_free = NIL;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("event slab exceeds u32 indexes");
            self.nodes.push(Node {
                at,
                seq,
                gen: 0,
                loc: Loc::Current,
                action: Some(action),
                next_free: NIL,
            });
            idx
        }
    }

    fn free(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.action = None;
        node.next_free = self.free_head;
        self.free_head = idx;
    }

    /// Files a live node into current/wheel/far based on its tick.
    fn place(&mut self, idx: u32) {
        let (at, seq) = {
            let node = &self.nodes[idx as usize];
            (node.at, node.seq)
        };
        let tick = tick_of(at);
        if tick <= self.base_tick {
            self.nodes[idx as usize].loc = Loc::Current;
            self.current.push(Reverse((at, seq, idx)));
        } else if tick - self.base_tick < WHEEL_SLOTS as u64 {
            let slot = (tick as usize) & (WHEEL_SLOTS - 1);
            self.nodes[idx as usize].loc = Loc::Wheel;
            self.wheel[slot].push(idx);
            self.occupancy[slot >> 6] |= 1 << (slot & 63);
            self.wheel_count += 1;
        } else {
            self.nodes[idx as usize].loc = Loc::Far;
            self.far.push(Reverse((at, seq, idx)));
        }
    }

    fn insert(&mut self, at: SimTime, action: Action<W, E>) -> EventHandle {
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(at, seq, action);
        self.place(idx);
        self.len += 1;
        EventHandle {
            index: idx,
            gen: self.nodes[idx as usize].gen,
        }
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(node) = self.nodes.get_mut(handle.index as usize) else {
            return false;
        };
        if node.gen != handle.gen || node.action.is_none() {
            return false;
        }
        node.action = None;
        self.len -= 1;
        if node.loc == Loc::Wheel {
            // Wheel entries are removed eagerly so wheel_count and the
            // occupancy bitmap stay exact; heap entries are skipped lazily.
            let slot = (tick_of(node.at) as usize) & (WHEEL_SLOTS - 1);
            let bucket = &mut self.wheel[slot];
            let pos = bucket
                .iter()
                .position(|&i| i == handle.index)
                .expect("wheel node missing from its bucket");
            bucket.swap_remove(pos);
            if bucket.is_empty() {
                self.occupancy[slot >> 6] &= !(1 << (slot & 63));
            }
            self.wheel_count -= 1;
            self.free(handle.index);
        }
        true
    }

    /// First occupied wheel slot at or after the cursor, with its tick.
    ///
    /// Caller must ensure `wheel_count > 0`.
    fn next_occupied_slot(&self) -> (usize, u64) {
        let start = (self.base_tick as usize) & (WHEEL_SLOTS - 1);
        let start_word = start >> 6;
        let start_bit = start & 63;
        for step in 0..=WHEEL_WORDS {
            let word_idx = (start_word + step) % WHEEL_WORDS;
            let mut word = self.occupancy[word_idx];
            if step == 0 {
                word &= !0u64 << start_bit;
            } else if step == WHEEL_WORDS {
                word &= !(!0u64 << start_bit);
            }
            if word != 0 {
                let slot = (word_idx << 6) + word.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) & (WHEEL_SLOTS - 1);
                return (slot, self.base_tick + dist as u64);
            }
        }
        unreachable!("next_occupied_slot called on an empty wheel");
    }

    /// Moves the cursor to `tick`, draining that tick's bucket into
    /// `current` and re-homing far events that now fall inside the horizon.
    fn advance_to(&mut self, tick: u64, slot: usize) {
        self.base_tick = tick;
        let mut bucket = std::mem::take(&mut self.wheel[slot]);
        self.occupancy[slot >> 6] &= !(1 << (slot & 63));
        self.wheel_count -= bucket.len();
        for idx in bucket.drain(..) {
            let node = &mut self.nodes[idx as usize];
            node.loc = Loc::Current;
            self.current.push(Reverse((node.at, node.seq, idx)));
        }
        // Hand the (empty, but with retained capacity) Vec back to the slot.
        self.wheel[slot] = bucket;
        self.rehome_far();
    }

    /// Pulls far events whose tick is now inside the wheel horizon.
    ///
    /// Maintains the invariant that `far` only holds ticks
    /// `>= base_tick + WHEEL_SLOTS`, so the wheel's next occupied slot is
    /// always earlier than everything in `far`.
    fn rehome_far(&mut self) {
        let horizon = self.base_tick + WHEEL_SLOTS as u64;
        while let Some(&Reverse((at, _, idx))) = self.far.peek() {
            if tick_of(at) >= horizon {
                break;
            }
            self.far.pop();
            if self.nodes[idx as usize].action.is_none() {
                self.free(idx);
            } else {
                self.place(idx);
            }
        }
    }

    /// Removes and returns the earliest live event before the deadline:
    /// at or before it when `inclusive`, strictly before it otherwise (the
    /// window-execution mode — boundary-instant events stay queued so
    /// cross-shard deliveries exchanged *at* the boundary precede them).
    fn pop_next(&mut self, deadline: SimTime, inclusive: bool) -> Pop<W, E> {
        let beyond = |at: SimTime| {
            if inclusive {
                at > deadline
            } else {
                at >= deadline
            }
        };
        loop {
            // 1. Drain the current-tick heap first: everything in it is
            //    earlier than anything in the wheel or far heap.
            if let Some(&Reverse((at, _, idx))) = self.current.peek() {
                if self.nodes[idx as usize].action.is_none() {
                    self.current.pop();
                    self.free(idx);
                    continue;
                }
                if beyond(at) {
                    return Pop::Deadline;
                }
                self.current.pop();
                let action = self.nodes[idx as usize]
                    .action
                    .take()
                    .expect("live node lost its action");
                self.len -= 1;
                self.free(idx);
                return Pop::Event { at, action };
            }
            // 2. Advance the cursor to the next occupied wheel slot and spill
            //    that bucket into `current`.
            if self.wheel_count > 0 {
                let (slot, tick) = self.next_occupied_slot();
                // A slot starting beyond the deadline holds only events
                // beyond it (every event in a slot is at or after the
                // slot's first nanosecond); don't advance into it.
                if beyond(SimTime::from_nanos(tick << TICK_SHIFT)) {
                    return Pop::Deadline;
                }
                self.advance_to(tick, slot);
                continue;
            }
            // 3. Wheel empty: jump the cursor to the far heap's earliest tick.
            while let Some(&Reverse((at, _, idx))) = self.far.peek() {
                if self.nodes[idx as usize].action.is_none() {
                    self.far.pop();
                    self.free(idx);
                    continue;
                }
                if beyond(at) {
                    return Pop::Deadline;
                }
                self.base_tick = tick_of(at);
                self.rehome_far();
                break;
            }
            if self.current.is_empty() && self.wheel_count == 0 && self.far.is_empty() {
                return Pop::Empty;
            }
        }
    }

    /// Instant of the earliest live event, if any.
    fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut consider = |at: SimTime| {
            best = Some(match best {
                Some(b) => b.min(at),
                None => at,
            });
        };
        for &Reverse((at, _, idx)) in self.current.iter() {
            if self.nodes[idx as usize].action.is_some() {
                consider(at);
            }
        }
        if self.wheel_count > 0 {
            // The first occupied slot holds the wheel's earliest events, and
            // all wheel entries are live (cancellation is eager there).
            let (slot, _) = self.next_occupied_slot();
            for &idx in &self.wheel[slot] {
                consider(self.nodes[idx as usize].at);
            }
        }
        for &Reverse((at, _, idx)) in self.far.iter() {
            if self.nodes[idx as usize].action.is_some() {
                consider(at);
            }
        }
        best
    }
}

/// Scheduling context passed to every event handler.
///
/// The context borrows the engine's event queue directly, so events
/// scheduled through it go straight into the timer wheel with no
/// intermediate buffering; they may be at the current instant (they will
/// run after all previously-queued events for that instant) or in the future.
pub struct Ctx<'e, W, E = NoEvent> {
    now: SimTime,
    stop: bool,
    queue: &'e mut EventQueue<W, E>,
}

impl<W, E> std::fmt::Debug for Ctx<'_, W, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("stop", &self.stop)
            .field("queued", &self.queue.len)
            .finish()
    }
}

impl<W, E> Ctx<'_, W, E> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `action` to run at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        self.schedule_at_handle(at, action);
    }

    /// Schedules `action` to run `delay` after the current instant.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        self.schedule_after_handle(delay, action);
    }

    /// Schedules `action` at absolute instant `at`, returning a cancellable
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_at_handle<F>(&mut self, at: SimTime, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.insert(at, Action::Boxed(Box::new(action)))
    }

    /// Schedules `action` to run `delay` after the current instant,
    /// returning a cancellable handle.
    pub fn schedule_after_handle<F>(&mut self, delay: SimDuration, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        let at = self.now + delay;
        self.queue.insert(at, Action::Boxed(Box::new(action)))
    }

    /// Schedules typed `event` at absolute instant `at` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        self.schedule_event_at_handle(at, event);
    }

    /// Schedules typed `event` to run `delay` after the current instant.
    pub fn schedule_event_after(&mut self, delay: SimDuration, event: E) {
        self.queue.insert(self.now + delay, Action::Typed(event));
    }

    /// Schedules typed `event` at `at`, returning a cancellable handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_event_at_handle(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.insert(at, Action::Typed(event))
    }

    /// Schedules typed `event` after `delay`, returning a cancellable handle.
    pub fn schedule_event_after_handle(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.queue.insert(self.now + delay, Action::Typed(event))
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now cancelled;
    /// `false` if it already ran, was already cancelled, or the handle is
    /// stale.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Requests that the engine stop after the current handler returns.
    ///
    /// Queued events are retained; a later `run_*` call resumes them.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Outcome of a single [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An event was dispatched at the contained instant.
    Ran(SimTime),
    /// The queue was empty; nothing ran.
    Idle,
}

/// What [`Engine::dispatch_next`] did.
enum Dispatched {
    /// Ran one event; `stop` is the handler's stop request.
    Ran { at: SimTime, stop: bool },
    /// The next event is after the deadline.
    Deadline,
    /// The queue is empty.
    Idle,
}

/// Passive observer of engine dispatches.
///
/// Probes let observability layers count events without the engine
/// depending on them (the telemetry crate sits above `reflex-sim`). A
/// probe must be purely passive: it sees the clock but cannot schedule,
/// mutate the world, or otherwise perturb the simulation.
pub trait EngineProbe: Send {
    /// Called once per dispatched event, after the clock advanced to `now`.
    fn on_dispatch(&mut self, now: SimTime);
}

/// A deterministic discrete-event engine over a world `W`.
///
/// See the module documentation for an example and a description of the
/// timer-wheel queue.
pub struct Engine<W, E = NoEvent> {
    world: W,
    queue: EventQueue<W, E>,
    now: SimTime,
    dispatched: u64,
    probe: Option<Box<dyn EngineProbe>>,
}

impl<W: std::fmt::Debug, E> std::fmt::Debug for Engine<W, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("queued", &self.queue.len)
            .field("dispatched", &self.dispatched)
            .field("probe", &self.probe.is_some())
            .field("world", &self.world)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates a closure-only engine at `t=0` wrapping `world`.
    ///
    /// The typed-event parameter is pinned to [`NoEvent`]; use
    /// [`Engine::with_events`] for a typed-event engine.
    pub fn new(world: W) -> Self {
        Engine::with_events(world)
    }
}

impl<W, E: TypedEvent<W>> Engine<W, E> {
    /// Creates an engine at `t=0` wrapping `world`, dispatching typed
    /// events of type `E` (plus boxed closures as a cold fallback).
    pub fn with_events(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
            probe: None,
        }
    }

    /// Installs an observability probe invoked once per dispatched event.
    /// Replaces any previously installed probe. Leave unset on hot paths:
    /// the unprobed dispatch cost is a single branch.
    pub fn set_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.probe = Some(probe);
    }

    /// Removes the probe, returning it.
    pub fn clear_probe(&mut self) -> Option<Box<dyn EngineProbe>> {
        self.probe.take()
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (for setup and inspection between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events currently queued (scheduled and not cancelled).
    pub fn queued(&self) -> usize {
        self.queue.len
    }

    /// Instant of the next queued event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedules `action` at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        self.schedule_at_handle(at, action);
    }

    /// Schedules `action` to run `delay` after the current instant.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedules `action` at absolute instant `at`, returning a cancellable
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_at_handle<F>(&mut self, at: SimTime, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.insert(at, Action::Boxed(Box::new(action)))
    }

    /// Schedules `action` to run `delay` after the current instant,
    /// returning a cancellable handle.
    pub fn schedule_after_handle<F>(&mut self, delay: SimDuration, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Ctx<'_, W, E>) + Send + 'static,
    {
        self.schedule_at_handle(self.now + delay, action)
    }

    /// Schedules typed `event` at absolute instant `at` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        self.schedule_event_at_handle(at, event);
    }

    /// Schedules typed `event` to run `delay` after the current instant.
    pub fn schedule_event_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_event_at(self.now + delay, event);
    }

    /// Schedules typed `event` at `at`, returning a cancellable handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_event_at_handle(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.insert(at, Action::Typed(event))
    }

    /// Schedules typed `event` after `delay`, returning a cancellable handle.
    pub fn schedule_event_after_handle(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_event_at_handle(self.now + delay, event)
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now cancelled;
    /// `false` if it already ran, was already cancelled, or the handle is
    /// stale.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Dispatches the earliest event at or before `deadline`, if any.
    ///
    /// This is the single dispatch path shared by [`Engine::step`] and
    /// [`Engine::run_until`].
    fn dispatch_next(&mut self, deadline: SimTime) -> Dispatched {
        self.dispatch_next_bounded(deadline, true)
    }

    fn dispatch_next_bounded(&mut self, deadline: SimTime, inclusive: bool) -> Dispatched {
        match self.queue.pop_next(deadline, inclusive) {
            Pop::Empty => Dispatched::Idle,
            Pop::Deadline => Dispatched::Deadline,
            Pop::Event { at, action } => {
                debug_assert!(at >= self.now, "event queue emitted a past event");
                self.now = at;
                self.dispatched += 1;
                if let Some(probe) = self.probe.as_mut() {
                    probe.on_dispatch(at);
                }
                let mut ctx = Ctx {
                    now: at,
                    stop: false,
                    queue: &mut self.queue,
                };
                match action {
                    Action::Typed(event) => event.dispatch(&mut self.world, &mut ctx),
                    Action::Boxed(f) => f(&mut self.world, &mut ctx),
                }
                let stop = ctx.stop;
                Dispatched::Ran { at, stop }
            }
        }
    }

    /// Dispatches the single earliest event, if any, advancing the clock.
    pub fn step(&mut self) -> Step {
        match self.dispatch_next(SimTime::from_nanos(u64::MAX)) {
            Dispatched::Ran { at, .. } => Step::Ran(at),
            Dispatched::Deadline | Dispatched::Idle => Step::Idle,
        }
    }

    /// Runs until the queue drains, the deadline passes, or a handler calls
    /// [`Ctx::stop`]. The clock is left at `min(deadline, last event time)`;
    /// events scheduled after `deadline` stay queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.dispatch_next(deadline) {
                Dispatched::Ran { stop: true, .. } => return,
                Dispatched::Ran { .. } => {}
                Dispatched::Deadline | Dispatched::Idle => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of simulated time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs every event *strictly before* `boundary`, then advances the
    /// clock to it. Events scheduled exactly at the boundary stay queued.
    ///
    /// This is the window-execution primitive of conservative parallel
    /// simulation: a shard runs its window `[now, boundary)`, the runner
    /// exchanges cross-shard messages at the boundary instant, and only
    /// then do boundary-instant events run — so deliveries exchanged at
    /// `boundary` are visible to every event at or after it, exactly as in
    /// a single-shard run.
    pub fn run_before(&mut self, boundary: SimTime) {
        loop {
            match self.dispatch_next_bounded(boundary, false) {
                Dispatched::Ran { stop: true, .. } => return,
                Dispatched::Ran { .. } => {}
                Dispatched::Deadline | Dispatched::Idle => break,
            }
        }
        if self.now < boundary {
            self.now = boundary;
        }
    }

    /// Runs `f` with the world and a scheduling context pinned to the
    /// current instant, outside event dispatch.
    ///
    /// Window-boundary hooks use this to inject cross-shard deliveries and
    /// arm wake events with the same `Ctx` API ordinary handlers use; a
    /// [`Ctx::stop`] request made here is ignored (nothing is running).
    pub fn enter<R>(&mut self, f: impl FnOnce(&mut W, &mut Ctx<'_, W, E>) -> R) -> R {
        let mut ctx = Ctx {
            now: self.now,
            stop: false,
            queue: &mut self.queue,
        };
        f(&mut self.world, &mut ctx)
    }

    /// Runs until the event queue is completely drained, leaving the clock
    /// at the instant of the last dispatched event.
    pub fn run_to_completion(&mut self) {
        while let Step::Ran(_) = self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new(Vec::<u32>::new());
        e.schedule_at(SimTime::from_micros(30), |w: &mut Vec<u32>, _| w.push(3));
        e.schedule_at(SimTime::from_micros(10), |w: &mut Vec<u32>, _| w.push(1));
        e.schedule_at(SimTime::from_micros(20), |w: &mut Vec<u32>, _| w.push(2));
        e.run_until(SimTime::from_millis(1));
        assert_eq!(e.world(), &[1, 2, 3]);
    }

    #[test]
    fn same_instant_events_run_fifo() {
        let mut e = Engine::new(Vec::<u32>::new());
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            e.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        e.run_until(t);
        assert_eq!(e.world(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut e = Engine::new(0u64);
        e.schedule_at(SimTime::from_micros(1), |w: &mut u64, ctx| {
            *w += 1;
            ctx.schedule_after(SimDuration::from_micros(1), |w, ctx| {
                *w += 10;
                ctx.schedule_after(SimDuration::from_micros(1), |w, _| *w += 100);
            });
        });
        e.run_until(SimTime::from_micros(10));
        assert_eq!(*e.world(), 111);
        assert_eq!(e.dispatched(), 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new(0u32);
        e.schedule_at(SimTime::from_micros(5), |w: &mut u32, _| *w += 1);
        e.schedule_at(SimTime::from_micros(50), |w: &mut u32, _| *w += 1);
        e.run_until(SimTime::from_micros(10));
        assert_eq!(*e.world(), 1);
        assert_eq!(e.now(), SimTime::from_micros(10));
        assert_eq!(e.queued(), 1);
        e.run_until(SimTime::from_micros(100));
        assert_eq!(*e.world(), 2);
    }

    #[test]
    fn stop_pauses_and_resumes() {
        let mut e = Engine::new(Vec::<u32>::new());
        e.schedule_at(SimTime::from_micros(1), |w: &mut Vec<u32>, ctx| {
            w.push(1);
            ctx.stop();
        });
        e.schedule_at(SimTime::from_micros(2), |w: &mut Vec<u32>, _| w.push(2));
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[1]);
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[1, 2]);
    }

    #[test]
    fn step_reports_idle_on_empty_queue() {
        let mut e = Engine::new(());
        assert_eq!(e.step(), Step::Idle);
        e.schedule_at(SimTime::from_micros(2), |_, _| {});
        assert_eq!(e.step(), Step::Ran(SimTime::from_micros(2)));
        assert_eq!(e.step(), Step::Idle);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new(());
        e.schedule_at(SimTime::from_micros(10), |_, _| {});
        e.run_until(SimTime::from_micros(10));
        e.schedule_at(SimTime::from_micros(5), |_, _| {});
    }

    #[test]
    fn run_for_advances_relative_to_now() {
        let mut e = Engine::new(0u32);
        e.schedule_at(SimTime::from_micros(5), |w: &mut u32, _| *w += 1);
        e.run_for(SimDuration::from_micros(3));
        assert_eq!(e.now(), SimTime::from_micros(3));
        assert_eq!(*e.world(), 0);
        e.run_for(SimDuration::from_micros(3));
        assert_eq!(*e.world(), 1);
        assert_eq!(e.now(), SimTime::from_micros(6));
    }

    #[test]
    fn heavy_interleaving_is_deterministic() {
        fn run() -> Vec<u64> {
            let mut e = Engine::new(Vec::new());
            for i in 0..100u64 {
                let at = SimTime::from_nanos((i * 37) % 500);
                e.schedule_at(at, move |w: &mut Vec<u64>, ctx| {
                    w.push(i);
                    if i % 3 == 0 {
                        ctx.schedule_after(SimDuration::from_nanos(i % 7), move |w, _| {
                            w.push(1000 + i)
                        });
                    }
                });
            }
            e.run_until(SimTime::from_micros(10));
            e.into_world()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn events_beyond_wheel_horizon_run_in_order() {
        // Mix near-wheel and far-heap events; the far heap covers everything
        // past ~4.2ms.
        let mut e = Engine::new(Vec::<u32>::new());
        e.schedule_at(SimTime::from_millis(100), |w: &mut Vec<u32>, _| w.push(4));
        e.schedule_at(SimTime::from_micros(1), |w: &mut Vec<u32>, _| w.push(1));
        e.schedule_at(SimTime::from_millis(10), |w: &mut Vec<u32>, _| w.push(3));
        e.schedule_at(SimTime::from_millis(2), |w: &mut Vec<u32>, _| w.push(2));
        e.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(5));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.world(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn far_events_interleave_with_later_wheel_inserts() {
        // Regression shape: an event far beyond the horizon must still run
        // before a nearer event scheduled later from inside the wheel window.
        let mut e = Engine::new(Vec::<u32>::new());
        e.schedule_at(SimTime::from_millis(5), |w: &mut Vec<u32>, _| w.push(2));
        e.schedule_at(SimTime::from_millis(4), |w: &mut Vec<u32>, ctx| {
            w.push(1);
            // Scheduled while the cursor sits at ~4ms: lands in the wheel,
            // but after the 5ms far event above.
            ctx.schedule_after(SimDuration::from_millis(2), |w, _| w.push(3));
        });
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.world(), &[1, 2, 3]);
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let mut e = Engine::new(Vec::<u32>::new());
        let near = e.schedule_at_handle(SimTime::from_micros(10), |w: &mut Vec<u32>, _| w.push(1));
        let far = e.schedule_at_handle(SimTime::from_millis(50), |w: &mut Vec<u32>, _| w.push(2));
        e.schedule_at(SimTime::from_micros(20), |w: &mut Vec<u32>, _| w.push(3));
        assert_eq!(e.queued(), 3);
        assert!(e.cancel(near));
        assert!(e.cancel(far));
        assert!(!e.cancel(near), "double-cancel must report false");
        assert_eq!(e.queued(), 1);
        e.run_until(SimTime::from_millis(100));
        assert_eq!(e.world(), &[3]);
    }

    #[test]
    fn cancel_from_within_a_handler() {
        let mut e = Engine::new(Vec::<u32>::new());
        let victim =
            e.schedule_at_handle(SimTime::from_micros(10), |w: &mut Vec<u32>, _| w.push(9));
        e.schedule_at(SimTime::from_micros(5), move |w: &mut Vec<u32>, ctx| {
            w.push(1);
            assert!(ctx.cancel(victim));
        });
        e.run_until(SimTime::from_micros(100));
        assert_eq!(e.world(), &[1]);
    }

    #[test]
    fn handles_go_stale_after_dispatch() {
        let mut e = Engine::new(0u32);
        let h = e.schedule_at_handle(SimTime::from_micros(1), |w: &mut u32, _| *w += 1);
        e.run_until(SimTime::from_micros(2));
        assert_eq!(*e.world(), 1);
        assert!(!e.cancel(h), "handle to a dispatched event must be stale");
        // Slab slot reuse must not resurrect the stale handle.
        let h2 = e.schedule_at_handle(SimTime::from_micros(5), |w: &mut u32, _| *w += 10);
        assert!(!e.cancel(h));
        assert!(e.cancel(h2));
        e.run_until(SimTime::from_micros(10));
        assert_eq!(*e.world(), 1);
    }

    #[test]
    fn next_event_time_sees_all_levels() {
        let mut e = Engine::new(());
        assert_eq!(e.next_event_time(), None);
        e.schedule_at(SimTime::from_secs(1), |_, _| {});
        assert_eq!(e.next_event_time(), Some(SimTime::from_secs(1)));
        e.schedule_at(SimTime::from_millis(1), |_, _| {});
        assert_eq!(e.next_event_time(), Some(SimTime::from_millis(1)));
        let h = e.schedule_at_handle(SimTime::from_micros(3), |_, _| {});
        assert_eq!(e.next_event_time(), Some(SimTime::from_micros(3)));
        e.cancel(h);
        assert_eq!(e.next_event_time(), Some(SimTime::from_millis(1)));
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum TestEvent {
        Push(u32),
        Chain(u32),
    }

    impl TypedEvent<Vec<u32>> for TestEvent {
        fn dispatch(self, world: &mut Vec<u32>, ctx: &mut Ctx<'_, Vec<u32>, Self>) {
            match self {
                TestEvent::Push(v) => world.push(v),
                TestEvent::Chain(v) => {
                    world.push(v);
                    ctx.schedule_event_after(SimDuration::from_micros(1), TestEvent::Push(v + 100));
                }
            }
        }
    }

    #[test]
    fn typed_events_interleave_with_closures_in_fifo_order() {
        let mut e: Engine<Vec<u32>, TestEvent> = Engine::with_events(Vec::new());
        let t = SimTime::from_micros(5);
        e.schedule_event_at(t, TestEvent::Push(1));
        e.schedule_at(t, |w: &mut Vec<u32>, _| w.push(2));
        e.schedule_event_at(t, TestEvent::Push(3));
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[1, 2, 3]);
    }

    #[test]
    fn typed_events_chain_and_reschedule() {
        let mut e: Engine<Vec<u32>, TestEvent> = Engine::with_events(Vec::new());
        e.schedule_event_at(SimTime::from_micros(1), TestEvent::Chain(7));
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[7, 107]);
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn typed_events_are_cancellable() {
        let mut e: Engine<Vec<u32>, TestEvent> = Engine::with_events(Vec::new());
        let h = e.schedule_event_at_handle(SimTime::from_micros(5), TestEvent::Push(1));
        e.schedule_event_at(SimTime::from_micros(6), TestEvent::Push(2));
        assert!(e.cancel(h));
        assert!(!e.cancel(h));
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[2]);
    }

    #[test]
    fn typed_event_churn_reuses_slab_nodes() {
        #[derive(Clone, Copy)]
        struct Tick;
        impl TypedEvent<u64> for Tick {
            fn dispatch(self, world: &mut u64, _ctx: &mut Ctx<'_, u64, Self>) {
                *world += 1;
            }
        }
        let mut e: Engine<u64, Tick> = Engine::with_events(0);
        for round in 0..1_000u64 {
            e.schedule_event_after(SimDuration::from_nanos(round % 97 + 1), Tick);
            e.run_to_completion();
        }
        assert_eq!(*e.world(), 1_000);
        assert!(
            e.queue.nodes.len() <= 2,
            "slab grew to {} nodes despite one-at-a-time churn",
            e.queue.nodes.len()
        );
    }

    #[test]
    fn slab_reuses_nodes_across_churn() {
        // Schedule/dispatch far more events than are ever pending at once;
        // the slab should stay at the high-water mark of pending events.
        let mut e = Engine::new(0u64);
        for round in 0..1_000u64 {
            e.schedule_after(SimDuration::from_nanos(round % 97 + 1), |w: &mut u64, _| {
                *w += 1
            });
            e.run_to_completion();
        }
        assert_eq!(*e.world(), 1_000);
        assert!(
            e.queue.nodes.len() <= 2,
            "slab grew to {} nodes despite one-at-a-time churn",
            e.queue.nodes.len()
        );
    }
}
