//! The discrete-event engine.
//!
//! [`Engine`] owns a user-supplied *world* (the mutable simulation state) and
//! a time-ordered queue of events. An event is a one-shot closure that
//! receives exclusive access to the world plus a [`Ctx`] handle for
//! scheduling follow-up events. Events at the same instant run in FIFO
//! scheduling order, which makes runs fully deterministic.
//!
//! # Examples
//!
//! ```
//! use reflex_sim::{Engine, SimDuration, SimTime};
//!
//! let mut engine = Engine::new(0u32);
//! engine.schedule_after(SimDuration::from_micros(5), |count, ctx| {
//!     *count += 1;
//!     // Chain a follow-up event 5us later.
//!     ctx.schedule_after(SimDuration::from_micros(5), |count, _| *count += 10);
//! });
//! engine.run_until(SimTime::from_micros(100));
//! assert_eq!(*engine.world(), 11);
//! // The clock advances to the deadline once the queue drains.
//! assert_eq!(engine.now(), SimTime::from_micros(100));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A one-shot event handler over world `W`.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Ctx<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Scheduling context passed to every event handler.
///
/// Events scheduled through the context are merged into the engine's queue
/// when the handler returns; they may be at the current instant (they will
/// run after all previously-queued events for that instant) or in the future.
pub struct Ctx<W> {
    now: SimTime,
    stop: bool,
    pending: Vec<(SimTime, EventFn<W>)>,
}

impl<W> std::fmt::Debug for Ctx<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("stop", &self.stop)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<W> Ctx<W> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `action` to run at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<W>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        self.pending.push((at, Box::new(action)));
    }

    /// Schedules `action` to run `delay` after the current instant.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<W>) + 'static,
    {
        let at = self.now + delay;
        self.pending.push((at, Box::new(action)));
    }

    /// Requests that the engine stop after the current handler returns.
    ///
    /// Queued events are retained; a later `run_*` call resumes them.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Outcome of a single [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An event was dispatched at the contained instant.
    Ran(SimTime),
    /// The queue was empty; nothing ran.
    Idle,
}

/// A deterministic discrete-event engine over a world `W`.
///
/// See the module documentation for an example.
pub struct Engine<W> {
    world: W,
    queue: BinaryHeap<Scheduled<W>>,
    now: SimTime,
    seq: u64,
    dispatched: u64,
}

impl<W: std::fmt::Debug> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("dispatched", &self.dispatched)
            .field("world", &self.world)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates an engine at `t=0` wrapping `world`.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            dispatched: 0,
        }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (for setup and inspection between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Instant of the next queued event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.at)
    }

    /// Schedules `action` at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<W>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, action: Box::new(action) });
    }

    /// Schedules `action` to run `delay` after the current instant.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut W, &mut Ctx<W>) + 'static,
    {
        self.schedule_at(self.now + delay, action);
    }

    /// Dispatches the single earliest event, if any, advancing the clock.
    pub fn step(&mut self) -> Step {
        let Some(ev) = self.queue.pop() else {
            return Step::Idle;
        };
        debug_assert!(ev.at >= self.now, "event queue emitted a past event");
        self.now = ev.at;
        self.dispatched += 1;
        let mut ctx = Ctx { now: self.now, stop: false, pending: Vec::new() };
        (ev.action)(&mut self.world, &mut ctx);
        for (at, action) in ctx.pending {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled { at, seq, action });
        }
        Step::Ran(self.now)
    }

    /// Runs until the queue drains, the deadline passes, or a handler calls
    /// [`Ctx::stop`]. The clock is left at `min(deadline, last event time)`;
    /// events scheduled after `deadline` stay queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.next_event_time() {
            if next > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            self.now = ev.at;
            self.dispatched += 1;
            let mut ctx = Ctx { now: self.now, stop: false, pending: Vec::new() };
            (ev.action)(&mut self.world, &mut ctx);
            let stop = ctx.stop;
            for (at, action) in ctx.pending {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Scheduled { at, seq, action });
            }
            if stop {
                return;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `span` of simulated time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs until the event queue is completely drained, leaving the clock
    /// at the instant of the last dispatched event.
    pub fn run_to_completion(&mut self) {
        while let Step::Ran(_) = self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new(Vec::<u32>::new());
        e.schedule_at(SimTime::from_micros(30), |w: &mut Vec<u32>, _| w.push(3));
        e.schedule_at(SimTime::from_micros(10), |w: &mut Vec<u32>, _| w.push(1));
        e.schedule_at(SimTime::from_micros(20), |w: &mut Vec<u32>, _| w.push(2));
        e.run_until(SimTime::from_millis(1));
        assert_eq!(e.world(), &[1, 2, 3]);
    }

    #[test]
    fn same_instant_events_run_fifo() {
        let mut e = Engine::new(Vec::<u32>::new());
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            e.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        e.run_until(t);
        assert_eq!(e.world(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut e = Engine::new(0u64);
        e.schedule_at(SimTime::from_micros(1), |w: &mut u64, ctx| {
            *w += 1;
            ctx.schedule_after(SimDuration::from_micros(1), |w, ctx| {
                *w += 10;
                ctx.schedule_after(SimDuration::from_micros(1), |w, _| *w += 100);
            });
        });
        e.run_until(SimTime::from_micros(10));
        assert_eq!(*e.world(), 111);
        assert_eq!(e.dispatched(), 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new(0u32);
        e.schedule_at(SimTime::from_micros(5), |w: &mut u32, _| *w += 1);
        e.schedule_at(SimTime::from_micros(50), |w: &mut u32, _| *w += 1);
        e.run_until(SimTime::from_micros(10));
        assert_eq!(*e.world(), 1);
        assert_eq!(e.now(), SimTime::from_micros(10));
        assert_eq!(e.queued(), 1);
        e.run_until(SimTime::from_micros(100));
        assert_eq!(*e.world(), 2);
    }

    #[test]
    fn stop_pauses_and_resumes() {
        let mut e = Engine::new(Vec::<u32>::new());
        e.schedule_at(SimTime::from_micros(1), |w: &mut Vec<u32>, ctx| {
            w.push(1);
            ctx.stop();
        });
        e.schedule_at(SimTime::from_micros(2), |w: &mut Vec<u32>, _| w.push(2));
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[1]);
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world(), &[1, 2]);
    }

    #[test]
    fn step_reports_idle_on_empty_queue() {
        let mut e = Engine::new(());
        assert_eq!(e.step(), Step::Idle);
        e.schedule_at(SimTime::from_micros(2), |_, _| {});
        assert_eq!(e.step(), Step::Ran(SimTime::from_micros(2)));
        assert_eq!(e.step(), Step::Idle);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new(());
        e.schedule_at(SimTime::from_micros(10), |_, _| {});
        e.run_until(SimTime::from_micros(10));
        e.schedule_at(SimTime::from_micros(5), |_, _| {});
    }

    #[test]
    fn run_for_advances_relative_to_now() {
        let mut e = Engine::new(0u32);
        e.schedule_at(SimTime::from_micros(5), |w: &mut u32, _| *w += 1);
        e.run_for(SimDuration::from_micros(3));
        assert_eq!(e.now(), SimTime::from_micros(3));
        assert_eq!(*e.world(), 0);
        e.run_for(SimDuration::from_micros(3));
        assert_eq!(*e.world(), 1);
        assert_eq!(e.now(), SimTime::from_micros(6));
    }

    #[test]
    fn heavy_interleaving_is_deterministic() {
        fn run() -> Vec<u64> {
            let mut e = Engine::new(Vec::new());
            for i in 0..100u64 {
                let at = SimTime::from_nanos((i * 37) % 500);
                e.schedule_at(at, move |w: &mut Vec<u64>, ctx| {
                    w.push(i);
                    if i % 3 == 0 {
                        ctx.schedule_after(SimDuration::from_nanos(i % 7), move |w, _| {
                            w.push(1000 + i)
                        });
                    }
                });
            }
            e.run_until(SimTime::from_micros(10));
            e.into_world()
        }
        assert_eq!(run(), run());
    }
}
