//! Deterministic random-number generation for simulations.
//!
//! [`SimRng`] wraps a seeded [`rand::rngs::SmallRng`] and adds the sampling
//! helpers the storage and network models need: exponential inter-arrival
//! gaps, lognormal service times, bounded uniform draws, and a Zipfian
//! key-popularity distribution for key-value workloads.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::time::SimDuration;

/// A seeded, deterministic RNG with simulation-oriented sampling helpers.
///
/// Two `SimRng`s constructed with the same seed produce identical streams,
/// which keeps every experiment reproducible.
///
/// # Examples
///
/// ```
/// use reflex_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each component
    /// its own stream so adding draws in one place does not perturb others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed(self.inner.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Derives the `index`-th stream of a seed *without* consuming state
    /// from any parent generator.
    ///
    /// Unlike [`fork`](Self::fork), whose output depends on how many forks
    /// preceded it, `stream` is keyed purely by `(seed, index)`. Components
    /// with a stable identity (a client host, a tenant workload) should use
    /// their id as the index so their stream survives reordering of
    /// construction — a prerequisite for sharded execution, where hosts are
    /// built per shard rather than in one global pass.
    pub fn stream(seed: u64, index: u64) -> SimRng {
        SimRng::seed(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index + 1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed duration with the given mean — the
    /// inter-arrival gap of a Poisson process.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-CDF sampling; guard the log against u == 0.
        let u = self.f64().max(1e-12);
        SimDuration::from_micros_f64(-mean.as_micros_f64() * u.ln())
    }

    /// Lognormally distributed duration parameterised by its *median* and
    /// the underlying normal's sigma. Service-time jitter in the device and
    /// stack models uses small sigmas (0.05–0.3).
    pub fn lognormal(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        let z = self.standard_normal();
        SimDuration::from_micros_f64(median.as_micros_f64() * (sigma * z).exp())
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.f64().max(1e-12);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Zipfian distribution over `[0, n)` with skew `theta`, using the
/// Gray et al. rejection-free approximation common in YCSB-style generators.
///
/// # Examples
///
/// ```
/// use reflex_sim::{SimRng, Zipf};
///
/// let mut rng = SimRng::seed(7);
/// let zipf = Zipf::new(1_000, 0.99);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a Zipfian distribution over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0,1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n keeps
        // construction O(1)-ish without visible accuracy loss for sampling.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = SimRng::seed(1);
        let mut fork = a.fork();
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| fork.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed(2);
        let mean = SimDuration::from_micros(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_micros_f64()).sum();
        let avg = total / n as f64;
        assert!(
            (avg - 100.0).abs() < 3.0,
            "sample mean {avg} too far from 100"
        );
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SimRng::seed(3);
        let median = SimDuration::from_micros(80);
        let mut xs: Vec<f64> = (0..10_001)
            .map(|_| rng.lognormal(median, 0.2).as_micros_f64())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let sample_median = xs[5_000];
        assert!((sample_median - 80.0).abs() < 2.0, "median {sample_median}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed(4);
        for _ in 0..1_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SimRng::seed(6);
        let z = Zipf::new(10_000, 0.99);
        let mut hits_top10 = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!(k < 10_000);
            if k < 10 {
                hits_top10 += 1;
            }
        }
        // With theta=0.99 the top 10 of 10k keys should draw a large share.
        assert!(
            hits_top10 > n / 10,
            "zipf not skewed: {hits_top10}/{n} in top-10"
        );
    }

    #[test]
    fn zipf_large_domain_construction() {
        let z = Zipf::new(100_000_000, 0.9);
        let mut rng = SimRng::seed(7);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 100_000_000);
        }
    }
}
