//! A generation-checked object pool for hot-path state.
//!
//! [`SlabPool`] recycles slots through an intrusive free list, so a
//! steady-state insert/take cycle performs zero heap allocations once the
//! pool has grown to its high-water mark. Every slot carries a generation
//! counter bumped on release; a [`PoolKey`] captures (slot, generation),
//! so a key held across a slot's reuse can never alias the new occupant —
//! lookups with a stale key return `None`.
//!
//! Keys pack losslessly into a `u64` ([`PoolKey::as_u64`]), which lets
//! them travel through existing cookie / command-id fields on the wire
//! and in NVMe commands without widening those types.

/// Sentinel for "no slot" in the free list.
const NIL: u32 = u32::MAX;

/// A generation-checked reference to a pooled value.
///
/// Obtained from [`SlabPool::insert`]; becomes stale once the value is
/// taken out (the slot's generation advances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolKey {
    slot: u32,
    gen: u32,
}

impl PoolKey {
    /// Packs the key into a `u64` (slot in the high half, generation in
    /// the low half). The mapping is bijective: [`PoolKey::from_u64`]
    /// recovers the exact key.
    #[inline]
    pub fn as_u64(self) -> u64 {
        (u64::from(self.slot) << 32) | u64::from(self.gen)
    }

    /// Recovers a key packed by [`PoolKey::as_u64`].
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        PoolKey {
            slot: (v >> 32) as u32,
            gen: v as u32,
        }
    }
}

/// One pool slot: its current generation plus either a live value or a
/// free-list link.
#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    /// `Some` while occupied; `None` while on the free list.
    value: Option<T>,
    /// Free-list link, `NIL` while occupied.
    next_free: u32,
}

/// A free-list slab recycling objects of type `T`.
///
/// See the module docs for the aliasing guarantees.
#[derive(Debug)]
pub struct SlabPool<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for SlabPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlabPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        SlabPool {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// An empty pool with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        SlabPool {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Live values currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (the pool's high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `value`, reusing a free slot when one exists.
    pub fn insert(&mut self, value: T) -> PoolKey {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            self.free_head = s.next_free;
            s.next_free = NIL;
            s.value = Some(value);
            PoolKey { slot, gen: s.gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("pool exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
                next_free: NIL,
            });
            PoolKey { slot, gen: 0 }
        }
    }

    /// Removes and returns the value for `key`.
    ///
    /// Returns `None` when the key is stale (the slot was already taken
    /// and possibly reused) — the generation check makes double-take and
    /// use-after-reuse impossible.
    pub fn take(&mut self, key: PoolKey) -> Option<T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen || s.value.is_none() {
            return None;
        }
        let value = s.value.take();
        s.gen = s.gen.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = key.slot;
        self.len -= 1;
        value
    }

    /// Shared access to the value for `key` (`None` when stale).
    pub fn get(&self, key: PoolKey) -> Option<&T> {
        let s = self.slots.get(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        s.value.as_ref()
    }

    /// Exclusive access to the value for `key` (`None` when stale).
    pub fn get_mut(&mut self, key: PoolKey) -> Option<&mut T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        s.value.as_mut()
    }

    /// True if `key` still refers to a live value.
    pub fn contains(&self, key: PoolKey) -> bool {
        self.get(key).is_some()
    }

    /// Removes every value, keeping slot storage. All outstanding keys go
    /// stale (each occupied slot's generation advances).
    pub fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.value.is_some() {
                s.value = None;
                s.gen = s.gen.wrapping_add(1);
                s.next_free = self.free_head;
                self.free_head = i as u32;
            }
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut p = SlabPool::new();
        let k = p.insert("hello");
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(k), Some(&"hello"));
        assert_eq!(p.take(k), Some("hello"));
        assert!(p.is_empty());
        assert_eq!(p.take(k), None, "double take must fail");
    }

    #[test]
    fn stale_keys_never_alias_reused_slots() {
        let mut p = SlabPool::new();
        let k1 = p.insert(1u32);
        assert_eq!(p.take(k1), Some(1));
        let k2 = p.insert(2u32);
        // Same slot, new generation: the old key sees nothing.
        assert_eq!(k1.slot, k2.slot);
        assert_ne!(k1, k2);
        assert_eq!(p.get(k1), None);
        assert_eq!(p.take(k1), None);
        assert_eq!(p.take(k2), Some(2));
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut p = SlabPool::new();
        let keys: Vec<_> = (0..8u32).map(|i| p.insert(i)).collect();
        for &k in &keys {
            p.take(k);
        }
        for _ in 0..100 {
            let k = p.insert(9u32);
            p.take(k);
        }
        assert_eq!(p.capacity(), 8, "churn must not grow the pool");
    }

    #[test]
    fn u64_packing_round_trips() {
        let mut p = SlabPool::new();
        for i in 0..5u32 {
            let k = p.insert(i);
            assert_eq!(PoolKey::from_u64(k.as_u64()), k);
        }
        // Distinct generations pack to distinct integers.
        let k1 = p.insert(10u32);
        p.take(k1);
        let k2 = p.insert(11u32);
        assert_ne!(k1.as_u64(), k2.as_u64());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut p = SlabPool::new();
        let k = p.insert(vec![1, 2]);
        p.get_mut(k).unwrap().push(3);
        assert_eq!(p.take(k), Some(vec![1, 2, 3]));
    }

    #[test]
    fn clear_stales_all_keys_and_keeps_storage() {
        let mut p = SlabPool::new();
        let keys: Vec<_> = (0..4u32).map(|i| p.insert(i)).collect();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.capacity(), 4);
        for k in keys {
            assert_eq!(p.get(k), None);
        }
        let _ = p.insert(9);
        assert_eq!(p.capacity(), 4);
    }
}
