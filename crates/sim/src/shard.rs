//! Conservative parallel discrete-event execution over sharded worlds.
//!
//! A [`ShardedEngine`] owns one [`Engine`](crate::Engine) per shard and runs
//! them on OS threads in bounded time windows. The window length is the
//! simulation's *lookahead*: the minimum latency any cross-shard interaction
//! can have (for the ReFlex testbed, the fabric's one-way propagation
//! delay). Within a window a shard can run freely, because no message sent
//! by a peer during the same window can arrive before the window ends.
//!
//! At every window boundary all shards rendezvous at a barrier, publish the
//! messages ("flights") they produced during the window into per-destination
//! mailboxes, and then ingest the flights addressed to them before resuming.
//! Determinism does not depend on mailbox arrival order: the
//! [`ShardWorld::deliver`] implementation is required to impose a total
//! order on flights (the testbed fabric keys them by
//! `(departure time, source machine, per-source sequence)`), so any thread
//! interleaving yields byte-identical results.
//!
//! With a single shard the runner degenerates to a plain
//! [`Engine::run_until`] call — no barrier, no mutex, no allocation — so the
//! sequential hot path is untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{Ctx, Engine};
use crate::time::{SimDuration, SimTime};

/// A world that can participate in sharded execution.
///
/// Implementors split one logical simulation into per-shard worlds that
/// interact only through typed `Flight` messages exchanged at window
/// boundaries.
pub trait ShardWorld<E>: Sized {
    /// Cross-shard message type. Carried between OS threads, so it must be
    /// [`Send`].
    type Flight: Send;

    /// Moves every flight produced since the last boundary into `sink` as
    /// `(destination shard, flight)` pairs. Called at each window boundary
    /// with the shard's clock already advanced to the boundary instant.
    fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>);

    /// Ingests flights addressed to this shard and schedules whatever wake
    /// events they imply. `flights` arrives in nondeterministic
    /// (thread-interleaving) order; implementations must impose their own
    /// total order before any observable effect.
    fn deliver(&mut self, ctx: &mut Ctx<'_, Self, E>, flights: &mut Vec<Self::Flight>);
}

/// Sense-reversing spin barrier for window rendezvous.
///
/// Windows are ~1µs of simulated time, so shards hit the barrier millions of
/// times per simulated second; parking threads in the kernel each time would
/// dominate the run. Waiting spins in userspace first, and falls back to
/// `yield_now` so oversubscribed hosts (more shards than cores) still make
/// progress instead of burning whole timeslices spinning on a peer that
/// cannot be scheduled.
#[derive(Debug)]
struct WindowBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl WindowBarrier {
    const SPINS_BEFORE_YIELD: u32 = 64;

    fn new(parties: usize) -> Self {
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < Self::SPINS_BEFORE_YIELD {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Double-buffered per-destination mailboxes.
///
/// Buffer parity alternates every window. A single barrier per window is
/// race-free with two buffers: a thread that has raced ahead into window
/// `k+1` writes into the other parity than the one its slower peers are
/// still draining, and it cannot reach parity `k` again without passing the
/// `k+1` barrier — which the slow peer only reaches after its drain.
#[derive(Debug)]
struct Mailboxes<F> {
    slots: Vec<[Mutex<Vec<F>>; 2]>,
}

impl<F> Mailboxes<F> {
    fn new(shards: usize) -> Self {
        Self {
            slots: (0..shards)
                .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                .collect(),
        }
    }

    fn post(&self, dst: usize, parity: usize, flight: F) {
        self.slots[dst][parity]
            .lock()
            .expect("mailbox poisoned")
            .push(flight);
    }

    fn drain_into(&self, shard: usize, parity: usize, out: &mut Vec<F>) {
        let mut slot = self.slots[shard][parity].lock().expect("mailbox poisoned");
        out.append(&mut slot);
    }
}

/// Runs one engine per shard under conservative windowed synchronization.
///
/// All engines share a clock discipline: [`run_until`](Self::run_until)
/// leaves every shard at exactly the target instant, so between runs the
/// shards agree on "now" and the next run can pick a common window grid.
#[derive(Debug)]
pub struct ShardedEngine<W, E = crate::engine::NoEvent> {
    engines: Vec<Engine<W, E>>,
    window: SimDuration,
}

impl<W, E: crate::engine::TypedEvent<W>> ShardedEngine<W, E> {
    /// Wraps a single engine; runs on the calling thread with zero
    /// synchronization overhead.
    pub fn single(engine: Engine<W, E>) -> Self {
        Self {
            engines: vec![engine],
            window: SimDuration::from_nanos(1),
        }
    }

    /// Builds a sharded runner over `engines` with the given lookahead
    /// `window`. All engines must be at the same simulated instant.
    ///
    /// # Panics
    /// Panics if `engines` is empty, `window` is zero, or the engines
    /// disagree on the current time.
    pub fn new(engines: Vec<Engine<W, E>>, window: SimDuration) -> Self {
        assert!(!engines.is_empty(), "at least one shard required");
        assert!(window.as_nanos() > 0, "lookahead window must be positive");
        let t0 = engines[0].now();
        assert!(
            engines.iter().all(|e| e.now() == t0),
            "shard clocks must agree before sharded execution"
        );
        Self { engines, window }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The lookahead window used between shard rendezvous points.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Shared reference to shard `i`'s engine.
    pub fn engine(&self, i: usize) -> &Engine<W, E> {
        &self.engines[i]
    }

    /// Exclusive reference to shard `i`'s engine.
    pub fn engine_mut(&mut self, i: usize) -> &mut Engine<W, E> {
        &mut self.engines[i]
    }

    /// Iterates over all shard engines mutably.
    pub fn engines_mut(&mut self) -> impl Iterator<Item = &mut Engine<W, E>> {
        self.engines.iter_mut()
    }

    /// Consumes the runner, returning the shard engines (re-partitioning).
    pub fn into_engines(self) -> Vec<Engine<W, E>> {
        self.engines
    }

    /// Current simulated time (all shards agree between runs).
    pub fn now(&self) -> SimTime {
        self.engines[0].now()
    }
}

impl<W, E> ShardedEngine<W, E>
where
    W: ShardWorld<E> + Send,
    E: crate::engine::TypedEvent<W> + Send + 'static,
{
    /// Runs all shards for `span` of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Runs all shards until `deadline` (inclusive), exchanging cross-shard
    /// flights at every window boundary.
    ///
    /// The window grid is absolute — boundaries sit at integer multiples of
    /// the window length — so the exchange instants do not depend on how the
    /// overall run is divided into `run_until` calls.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.engines.len() == 1 {
            // Sequential fast path: no barrier, no mailboxes, no threads.
            self.engines[0].run_until(deadline);
            return;
        }
        let window = self.window.as_nanos();
        let start = self.now();
        let barrier = WindowBarrier::new(self.engines.len());
        let mailboxes: Mailboxes<W::Flight> = Mailboxes::new(self.engines.len());
        std::thread::scope(|scope| {
            for (shard, eng) in self.engines.iter_mut().enumerate() {
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                scope.spawn(move || {
                    run_shard(eng, shard, start, deadline, window, barrier, mailboxes);
                });
            }
        });
    }
}

/// Per-thread window loop for one shard.
fn run_shard<W, E>(
    eng: &mut Engine<W, E>,
    shard: usize,
    start: SimTime,
    deadline: SimTime,
    window: u64,
    barrier: &WindowBarrier,
    mailboxes: &Mailboxes<W::Flight>,
) where
    W: ShardWorld<E>,
    E: crate::engine::TypedEvent<W>,
{
    let mut outbound: Vec<(usize, W::Flight)> = Vec::new();
    let mut inbound: Vec<W::Flight> = Vec::new();
    // First boundary strictly after the start instant, on the absolute grid.
    let mut next = SimTime::from_nanos((start.as_nanos() / window + 1) * window);
    let mut parity = 0usize;
    // `<=`, not `<`: when the deadline falls exactly on a boundary, events
    // scheduled at the deadline may depend on flights departing in the final
    // window, so the exchange at the deadline instant must still happen
    // before the inclusive tail run below.
    while next <= deadline {
        eng.run_before(next);
        eng.enter(|world, _| world.flush_outbound(&mut outbound));
        for (dst, flight) in outbound.drain(..) {
            mailboxes.post(dst, parity, flight);
        }
        barrier.wait();
        mailboxes.drain_into(shard, parity, &mut inbound);
        eng.enter(|world, ctx| world.deliver(ctx, &mut inbound));
        debug_assert!(inbound.is_empty(), "deliver must consume all flights");
        inbound.clear();
        parity ^= 1;
        next += SimDuration::from_nanos(window);
    }
    eng.run_until(deadline);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy shard world: each shard holds a counter; flights add to it after
    /// one window of flight time.
    struct PingWorld {
        shard: usize,
        shards: usize,
        value: u64,
        staged: Vec<(usize, u64)>,
        log: Vec<(u64, usize, u64)>,
    }

    impl ShardWorld<crate::engine::NoEvent> for PingWorld {
        type Flight = (u64, usize, u64);

        fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>) {
            for (dst, v) in self.staged.drain(..) {
                sink.push((dst, (0, self.shard, v)));
            }
        }

        fn deliver(
            &mut self,
            _ctx: &mut Ctx<'_, Self, crate::engine::NoEvent>,
            flights: &mut Vec<Self::Flight>,
        ) {
            flights.sort_unstable();
            for f in flights.drain(..) {
                self.value += f.2;
                self.log.push(f);
            }
        }
    }

    fn ping_engines(n: usize) -> Vec<Engine<PingWorld>> {
        (0..n)
            .map(|shard| {
                let mut eng = Engine::new(PingWorld {
                    shard,
                    shards: n,
                    value: 0,
                    staged: Vec::new(),
                    log: Vec::new(),
                });
                // Every 3µs each shard sends its shard id + tick to the next
                // shard around the ring.
                fn tick(
                    world: &mut PingWorld,
                    ctx: &mut Ctx<'_, PingWorld, crate::engine::NoEvent>,
                ) {
                    let dst = (world.shard + 1) % world.shards;
                    let stamp = ctx.now().as_nanos();
                    world.staged.push((dst, stamp + world.shard as u64));
                    ctx.schedule_after(SimDuration::from_nanos(3_000), tick);
                }
                eng.schedule_after(SimDuration::from_nanos(3_000), tick);
                eng
            })
            .collect()
    }

    type ShardState = (u64, Vec<(u64, usize, u64)>);

    fn run_sharded(n: usize, windows: u64) -> Vec<ShardState> {
        let mut se = ShardedEngine::new(ping_engines(n), SimDuration::from_nanos(1_000));
        se.run_for(SimDuration::from_nanos(windows));
        (0..n)
            .map(|i| {
                let w = se.engine(i).world();
                (w.value, w.log.clone())
            })
            .collect()
    }

    #[test]
    fn windowed_run_is_deterministic_across_repeats() {
        let a = run_sharded(4, 50_000);
        for _ in 0..5 {
            assert_eq!(a, run_sharded(4, 50_000));
        }
    }

    #[test]
    fn all_flights_arrive() {
        // 50µs run, sends every 3µs => 16 sends per shard, ring topology
        // means each shard also receives 16 flights.
        let res = run_sharded(3, 50_000);
        for (_, log) in &res {
            assert_eq!(log.len(), 16);
        }
    }

    #[test]
    fn single_shard_fast_path_matches_plain_engine() {
        let mut solo = ping_engines(1).pop().unwrap();
        solo.run_for(SimDuration::from_nanos(20_000));
        // Single-shard ShardedEngine never exchanges, so the staged sends
        // simply accumulate; the fast path must behave exactly like the
        // plain engine (which also never exchanges).
        let mut se = ShardedEngine::single(ping_engines(1).pop().unwrap());
        se.run_for(SimDuration::from_nanos(20_000));
        assert_eq!(solo.world().staged, se.engine(0).world().staged);
        assert_eq!(solo.now(), se.now());
    }

    #[test]
    fn clocks_agree_after_run() {
        let mut se = ShardedEngine::new(ping_engines(4), SimDuration::from_nanos(1_000));
        // Deadline off the window grid: tail run past the last boundary.
        se.run_until(SimTime::from_nanos(10_500));
        for i in 0..4 {
            assert_eq!(se.engine(i).now(), SimTime::from_nanos(10_500));
        }
        // And exactly on the grid: the boundary exchange still precedes the
        // inclusive tail.
        se.run_until(SimTime::from_nanos(20_000));
        for i in 0..4 {
            assert_eq!(se.engine(i).now(), SimTime::from_nanos(20_000));
        }
    }

    #[test]
    #[should_panic(expected = "lookahead window must be positive")]
    fn zero_window_rejected() {
        let _ = ShardedEngine::new(ping_engines(2), SimDuration::from_nanos(0));
    }
}
