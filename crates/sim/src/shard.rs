//! Conservative parallel discrete-event execution over sharded worlds.
//!
//! A [`ShardedEngine`] owns one [`Engine`](crate::Engine) per shard and runs
//! them on OS threads in bounded time windows. The window length is the
//! simulation's *lookahead*: the minimum latency any cross-shard interaction
//! can have (for the ReFlex testbed, the fabric's one-way propagation
//! delay). Within a window a shard can run freely, because no message sent
//! by a peer during the same window can arrive before the window ends.
//!
//! At every rendezvous all shards meet at a barrier, publish the messages
//! ("flights") they produced since the previous rendezvous into
//! per-destination mailboxes, and then ingest the flights addressed to them
//! before resuming. Determinism does not depend on mailbox arrival order:
//! the [`ShardWorld::deliver`] implementation is required to impose a total
//! order on flights (the testbed fabric keys them by
//! `(departure time, source machine, per-source sequence)`), so any thread
//! interleaving yields byte-identical results.
//!
//! Two mechanisms keep shards off the barrier when there is nothing to
//! exchange — both leave simulated results untouched, because they only
//! decide *when* shards rendezvous, never what any event computes:
//!
//! - **Event-horizon window extension** ([`LookaheadPolicy::Adaptive`]).
//!   At each rendezvous every shard publishes a *safe-until* instant: the
//!   earlier of its next pending local event and the earliest arrival bound
//!   among the flights it just posted. No flight anywhere in the system can
//!   depart before `T* = min(safe-until)`, so no shard needs an exchange
//!   before the first window boundary after `T*` — all shards jump their
//!   next rendezvous there, committing many grid windows at one barrier
//!   when the system is quiet.
//! - **Per-shard-pair lookahead** ([`ShardTopology`]). The fabric knows
//!   which links actually cross each shard boundary. A shard with no
//!   outbound links to any peer can never constrain them, so its safe-until
//!   is excluded from `T*` and its local schedule never drags the fleet to
//!   a barrier. (Pairs *with* links must still exchange on the window grid:
//!   the windowed fabric resolves receive halves on that grid, so a linked
//!   sender's flights are needed one window after they depart regardless of
//!   the link's propagation.)
//!
//! With a single shard the runner degenerates to a plain
//! [`Engine::run_until`] call — no barrier, no mutex, no allocation — so the
//! sequential hot path is untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::engine::{Ctx, Engine};
use crate::time::{SimDuration, SimTime};

/// A world that can participate in sharded execution.
///
/// Implementors split one logical simulation into per-shard worlds that
/// interact only through typed `Flight` messages exchanged at window
/// boundaries.
pub trait ShardWorld<E>: Sized {
    /// Cross-shard message type. Carried between OS threads, so it must be
    /// [`Send`].
    type Flight: Send;

    /// Moves every flight produced since the last boundary into `sink` as
    /// `(destination shard, flight)` pairs. Called at each window boundary
    /// with the shard's clock already advanced to the boundary instant.
    fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>);

    /// Ingests flights addressed to this shard and schedules whatever wake
    /// events they imply. `flights` arrives in nondeterministic
    /// (thread-interleaving) order; implementations must impose their own
    /// total order before any observable effect.
    fn deliver(&mut self, ctx: &mut Ctx<'_, Self, E>, flights: &mut Vec<Self::Flight>);

    /// Conservative lower bound on when `flight` can first affect its
    /// destination shard (the testbed returns the flight's arrival bound).
    /// Feeds the event-horizon window extension: a rendezvous where every
    /// posted flight's bound and every pending event lie far ahead lets all
    /// shards commit multiple windows at once. `None` (the default) means
    /// "unknown", which disables extension for windows that posted flights
    /// but never affects correctness.
    fn flight_bound(_flight: &Self::Flight) -> Option<SimTime> {
        None
    }
}

/// How the sharded runner picks the next rendezvous boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookaheadPolicy {
    /// Rendezvous at every boundary of the global-minimum-lookahead window
    /// grid — the conservative baseline (one barrier per window).
    GlobalMin,
    /// Event-horizon window extension over the same grid: skip straight to
    /// the first boundary after the fleet-wide safe instant, honoring the
    /// per-shard-pair link matrix ([`ShardTopology`]). Simulated results
    /// are byte-identical to [`LookaheadPolicy::GlobalMin`]; only the
    /// number of barriers differs.
    #[default]
    Adaptive,
}

/// Which shard pairs are connected by links, and with how much lookahead.
///
/// `pair[i][j]` is the minimum time any flight from shard `i` needs to
/// reach shard `j` (`None` when no link crosses that boundary, so `i` can
/// never send to `j`). Built by the fabric from the actual links crossing
/// each shard boundary; [`ShardTopology::full_mesh`] is the conservative
/// default used when no link accounting is available.
#[derive(Debug, Clone)]
pub struct ShardTopology {
    pair: Vec<Vec<Option<SimDuration>>>,
}

impl ShardTopology {
    /// Every pair linked with the same lookahead — the conservative
    /// assumption matching the pre-accounting behavior.
    pub fn full_mesh(shards: usize, lookahead: SimDuration) -> Self {
        let pair = (0..shards)
            .map(|i| (0..shards).map(|j| (i != j).then_some(lookahead)).collect())
            .collect();
        ShardTopology { pair }
    }

    /// Builds a topology from an explicit pair matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or marks a shard as linked to
    /// itself (intra-shard traffic never crosses the exchange).
    pub fn from_pair_matrix(pair: Vec<Vec<Option<SimDuration>>>) -> Self {
        let n = pair.len();
        for (i, row) in pair.iter().enumerate() {
            assert_eq!(row.len(), n, "pair matrix must be square");
            assert!(row[i].is_none(), "shard {i} cannot link to itself");
        }
        ShardTopology { pair }
    }

    /// Number of shards the topology covers.
    pub fn shards(&self) -> usize {
        self.pair.len()
    }

    /// Lookahead of the `src → dst` pair, `None` when no link crosses it.
    pub fn pair_lookahead(&self, src: usize, dst: usize) -> Option<SimDuration> {
        self.pair[src][dst]
    }

    /// Whether shard `i` has any outbound link — i.e. whether its local
    /// schedule can ever constrain a peer. Shards without outbound links
    /// are excluded from the fleet-wide safe instant.
    fn constrains_others(&self, i: usize) -> bool {
        self.pair[i].iter().any(Option::is_some)
    }

    /// Smallest lookahead among linked pairs, if any pair is linked.
    pub fn min_lookahead(&self) -> Option<SimDuration> {
        self.pair.iter().flatten().flatten().min().copied()
    }
}

/// Deterministic per-shard execution counters, plus wall-clock barrier
/// accounting. Everything except the `wall_*` fields is a pure function of
/// the simulation (identical across runs and across hosts); the `wall_*`
/// fields measure real time spent and exist for the scaling benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Barrier rendezvous this shard participated in.
    pub barrier_waits: u64,
    /// Window-grid steps committed (every rendezvous commits ≥ 1).
    pub windows_committed: u64,
    /// Rendezvous that committed more than one grid window at once
    /// (event-horizon extension firing).
    pub extended_commits: u64,
    /// Wall-clock nanoseconds spent waiting at the barrier
    /// (nondeterministic; excluded from telemetry snapshots).
    pub wall_wait_nanos: u64,
    /// Wall-clock nanoseconds spent inside the shard's run loop, barrier
    /// waits included (nondeterministic).
    pub wall_run_nanos: u64,
}

/// Pads to a cache line so per-shard atomics never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// Flat sense-free barrier: one cache-padded epoch counter per shard.
///
/// Windows are ~1µs of simulated time, so shards hit the barrier millions
/// of times per simulated second. Each thread only ever *writes* its own
/// epoch line (no contended `fetch_add`) and spins reading the peers',
/// which stay in shared state between rendezvous. Waiting spins in
/// userspace first and falls back to `yield_now`, so oversubscribed hosts
/// (more shards than cores) still make progress instead of burning whole
/// timeslices spinning on a peer that cannot be scheduled.
#[derive(Debug)]
struct EpochBarrier {
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl EpochBarrier {
    const SPINS_BEFORE_YIELD: u32 = 128;

    fn new(parties: usize) -> Self {
        Self {
            epochs: (0..parties).map(|_| CachePadded::default()).collect(),
        }
    }

    /// Announces `shard`'s arrival at rendezvous `epoch` (1-based) and
    /// waits for every peer to arrive. Returns the wall-clock nanoseconds
    /// spent waiting. The Release store of the shard's own epoch publishes
    /// everything it wrote before the barrier (mailboxes, safe-until); the
    /// Acquire loads of the peers' epochs pick those writes up.
    fn wait(&self, shard: usize, epoch: u64) -> u64 {
        self.epochs[shard].0.store(epoch, Ordering::Release);
        let mut spins = 0u32;
        let mut waited: Option<std::time::Instant> = None;
        for (i, e) in self.epochs.iter().enumerate() {
            if i == shard {
                continue;
            }
            while e.0.load(Ordering::Acquire) < epoch {
                if waited.is_none() {
                    waited = Some(std::time::Instant::now());
                }
                if spins < Self::SPINS_BEFORE_YIELD {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        waited.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }
}

/// Double-buffered per-destination mailboxes.
///
/// Buffer parity alternates every rendezvous. A single barrier per
/// rendezvous is race-free with two buffers: a thread that has raced ahead
/// into rendezvous `k+1` writes into the other parity than the one its
/// slower peers are still draining, and it cannot reach parity `k` again
/// without passing the `k+1` barrier — which the slow peer only reaches
/// after its drain.
#[derive(Debug)]
struct Mailboxes<F> {
    slots: Vec<[Mutex<Vec<F>>; 2]>,
}

impl<F> Mailboxes<F> {
    fn new(shards: usize) -> Self {
        Self {
            slots: (0..shards)
                .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                .collect(),
        }
    }

    fn post(&self, dst: usize, parity: usize, flight: F) {
        self.slots[dst][parity]
            .lock()
            .expect("mailbox poisoned")
            .push(flight);
    }

    fn drain_into(&self, shard: usize, parity: usize, out: &mut Vec<F>) {
        let mut slot = self.slots[shard][parity].lock().expect("mailbox poisoned");
        out.append(&mut slot);
    }
}

/// Safe-until instants published at each rendezvous (nanos; `u64::MAX`
/// means "no pending events and no posted flights"). Written before the
/// barrier arrival, read after it — the barrier's Release/Acquire pair on
/// each shard's epoch orders the accesses. Double-buffered by rendezvous
/// parity like the mailboxes: a shard that has raced ahead publishes its
/// next value into the other slot than the one slower peers are still
/// reading, and cannot come back to the same parity without passing a
/// barrier its peers only reach after their reads.
struct SafeBoard {
    safe: Vec<CachePadded<[AtomicU64; 2]>>,
}

impl SafeBoard {
    fn new(parties: usize) -> Self {
        Self {
            safe: (0..parties).map(|_| CachePadded::default()).collect(),
        }
    }

    fn publish(&self, shard: usize, parity: usize, nanos: u64) {
        self.safe[shard].0[parity].store(nanos, Ordering::Relaxed);
    }

    fn read(&self, shard: usize, parity: usize) -> u64 {
        self.safe[shard].0[parity].load(Ordering::Relaxed)
    }
}

/// Runs one engine per shard under conservative windowed synchronization.
///
/// All engines share a clock discipline: [`run_until`](Self::run_until)
/// leaves every shard at exactly the target instant, so between runs the
/// shards agree on "now" and the next run can pick a common window grid.
#[derive(Debug)]
pub struct ShardedEngine<W, E = crate::engine::NoEvent> {
    engines: Vec<Engine<W, E>>,
    window: SimDuration,
    policy: LookaheadPolicy,
    topology: Option<ShardTopology>,
    /// Logical CPU to pin each shard's thread to, when placement is on.
    pin_cores: Option<Vec<usize>>,
    stats: Vec<ShardStats>,
}

impl<W, E: crate::engine::TypedEvent<W>> ShardedEngine<W, E> {
    /// Wraps a single engine; runs on the calling thread with zero
    /// synchronization overhead.
    pub fn single(engine: Engine<W, E>) -> Self {
        Self {
            engines: vec![engine],
            window: SimDuration::from_nanos(1),
            policy: LookaheadPolicy::default(),
            topology: None,
            pin_cores: None,
            stats: vec![ShardStats::default()],
        }
    }

    /// Builds a sharded runner over `engines` with the given lookahead
    /// `window`. All engines must be at the same simulated instant.
    ///
    /// # Panics
    /// Panics if `engines` is empty, `window` is zero, or the engines
    /// disagree on the current time.
    pub fn new(engines: Vec<Engine<W, E>>, window: SimDuration) -> Self {
        assert!(!engines.is_empty(), "at least one shard required");
        assert!(window.as_nanos() > 0, "lookahead window must be positive");
        let t0 = engines[0].now();
        assert!(
            engines.iter().all(|e| e.now() == t0),
            "shard clocks must agree before sharded execution"
        );
        let stats = vec![ShardStats::default(); engines.len()];
        Self {
            engines,
            window,
            policy: LookaheadPolicy::default(),
            topology: None,
            pin_cores: None,
            stats,
        }
    }

    /// Installs the per-shard-pair link matrix used by
    /// [`LookaheadPolicy::Adaptive`]. Without one, a conservative full
    /// mesh is assumed.
    ///
    /// # Panics
    ///
    /// Panics if the matrix size disagrees with the shard count, or if any
    /// linked pair's lookahead is shorter than the window (the grid *is*
    /// the minimum lookahead; a shorter link would break conservatism).
    pub fn set_topology(&mut self, topology: ShardTopology) {
        assert_eq!(
            topology.shards(),
            self.engines.len(),
            "topology must cover every shard"
        );
        if let Some(min) = topology.min_lookahead() {
            assert!(
                min >= self.window,
                "pair lookahead {min:?} below the window {:?}",
                self.window
            );
        }
        self.topology = Some(topology);
    }

    /// Selects how the runner picks rendezvous boundaries. Simulated
    /// results are identical under every policy; only barrier counts and
    /// wall-time change.
    pub fn set_policy(&mut self, policy: LookaheadPolicy) {
        self.policy = policy;
    }

    /// The active rendezvous policy.
    pub fn policy(&self) -> LookaheadPolicy {
        self.policy
    }

    /// Pins shard `i`'s thread to logical CPU `cores[i]` during
    /// [`run_until`](Self::run_until). Pass fewer cores than shards (or an
    /// empty vec) to leave the remainder unpinned; `None` disables
    /// placement entirely.
    pub fn set_pinning(&mut self, cores: Option<Vec<usize>>) {
        self.pin_cores = cores;
    }

    /// The shard→core placement, when one is installed.
    pub fn pinning(&self) -> Option<&[usize]> {
        self.pin_cores.as_deref()
    }

    /// Cumulative execution counters for shard `i`.
    pub fn shard_stats(&self, i: usize) -> ShardStats {
        self.stats[i]
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The lookahead window used between shard rendezvous points.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Shared reference to shard `i`'s engine.
    pub fn engine(&self, i: usize) -> &Engine<W, E> {
        &self.engines[i]
    }

    /// Exclusive reference to shard `i`'s engine.
    pub fn engine_mut(&mut self, i: usize) -> &mut Engine<W, E> {
        &mut self.engines[i]
    }

    /// Iterates over all shard engines mutably.
    pub fn engines_mut(&mut self) -> impl Iterator<Item = &mut Engine<W, E>> {
        self.engines.iter_mut()
    }

    /// Consumes the runner, returning the shard engines (re-partitioning).
    pub fn into_engines(self) -> Vec<Engine<W, E>> {
        self.engines
    }

    /// Current simulated time (all shards agree between runs).
    pub fn now(&self) -> SimTime {
        self.engines[0].now()
    }
}

impl<W, E> ShardedEngine<W, E>
where
    W: ShardWorld<E> + Send,
    E: crate::engine::TypedEvent<W> + Send + 'static,
{
    /// Runs all shards for `span` of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Runs all shards until `deadline` (inclusive), exchanging cross-shard
    /// flights at every rendezvous boundary.
    ///
    /// The window grid is absolute — boundaries sit at integer multiples of
    /// the window length — so the exchange instants do not depend on how the
    /// overall run is divided into `run_until` calls. Under
    /// [`LookaheadPolicy::Adaptive`] some grid boundaries host no
    /// rendezvous (all shards provably have nothing to exchange before a
    /// later one), but the boundaries that *are* used come from the same
    /// grid, keeping results byte-identical to the every-window baseline.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.engines.len() == 1 {
            // Sequential fast path: no barrier, no mailboxes, no threads.
            self.engines[0].run_until(deadline);
            return;
        }
        let shards = self.engines.len();
        let start = self.now();
        let barrier = EpochBarrier::new(shards);
        let board = SafeBoard::new(shards);
        let mailboxes: Mailboxes<W::Flight> = Mailboxes::new(shards);
        // Shards whose safe-until can constrain a peer: those with any
        // outbound link. Without a topology, assume all of them do.
        let constrains: Vec<bool> = (0..shards)
            .map(|i| {
                self.topology
                    .as_ref()
                    .is_none_or(|t| t.constrains_others(i))
            })
            .collect();
        let cfg = RunConfig {
            start,
            deadline,
            window: self.window.as_nanos(),
            policy: self.policy,
            barrier: &barrier,
            board: &board,
            constrains: &constrains,
        };
        let pins = &self.pin_cores;
        std::thread::scope(|scope| {
            for (shard, (eng, stats)) in self
                .engines
                .iter_mut()
                .zip(self.stats.iter_mut())
                .enumerate()
            {
                let mailboxes = &mailboxes;
                let cfg = &cfg;
                let core = pins.as_ref().and_then(|p| p.get(shard)).copied();
                scope.spawn(move || {
                    if let Some(id) = core {
                        // Best-effort: an unpinned shard is only slower.
                        core_affinity::set_for_current(core_affinity::CoreId { id });
                    }
                    run_shard(eng, shard, cfg, mailboxes, stats);
                });
            }
        });
    }
}

/// Shared, read-only configuration of one `run_until` call.
struct RunConfig<'a> {
    start: SimTime,
    deadline: SimTime,
    window: u64,
    policy: LookaheadPolicy,
    barrier: &'a EpochBarrier,
    board: &'a SafeBoard,
    constrains: &'a [bool],
}

/// Per-thread rendezvous loop for one shard.
fn run_shard<W, E>(
    eng: &mut Engine<W, E>,
    shard: usize,
    cfg: &RunConfig<'_>,
    mailboxes: &Mailboxes<W::Flight>,
    stats: &mut ShardStats,
) where
    W: ShardWorld<E>,
    E: crate::engine::TypedEvent<W>,
{
    let run_started = std::time::Instant::now();
    let window = cfg.window;
    let mut outbound: Vec<(usize, W::Flight)> = Vec::new();
    let mut inbound: Vec<W::Flight> = Vec::new();
    // First boundary strictly after the start instant, on the absolute grid.
    let mut next = SimTime::from_nanos((cfg.start.as_nanos() / window + 1) * window);
    let mut rendezvous: u64 = 0;
    // `<=`, not `<`: when the deadline falls exactly on a boundary, events
    // scheduled at the deadline may depend on flights departing in the final
    // window, so the exchange at the deadline instant must still happen
    // before the inclusive tail run below.
    while next <= cfg.deadline {
        eng.run_before(next);
        eng.enter(|world, _| world.flush_outbound(&mut outbound));
        // Safe-until: nothing this shard does before this instant can
        // create work for a peer. Posted flights count via their arrival
        // bound (the receiver's wake events they will spawn); local
        // pending events via the engine's next event time. Computed
        // *before* deliver on purpose — events a peer's flights will
        // schedule here are covered by that peer's posted bounds.
        let parity = (rendezvous & 1) as usize;
        let mut safe = u64::MAX;
        for (dst, flight) in outbound.drain(..) {
            safe = safe.min(W::flight_bound(&flight).map_or(next.as_nanos(), SimTime::as_nanos));
            mailboxes.post(dst, parity, flight);
        }
        safe = safe.min(eng.next_event_time().map_or(u64::MAX, SimTime::as_nanos));
        cfg.board.publish(shard, parity, safe);
        rendezvous += 1;
        stats.barrier_waits += 1;
        stats.wall_wait_nanos += cfg.barrier.wait(shard, rendezvous);
        mailboxes.drain_into(shard, parity, &mut inbound);
        eng.enter(|world, ctx| world.deliver(ctx, &mut inbound));
        debug_assert!(inbound.is_empty(), "deliver must consume all flights");
        inbound.clear();
        // Next rendezvous: one window ahead, or — when every constraining
        // shard's safe-until allows it — the first boundary after the
        // fleet-wide safe instant T*. Every shard computes the same T*
        // from the published board, so the rendezvous schedule stays
        // agreed without further communication.
        let base = next + SimDuration::from_nanos(window);
        next = match cfg.policy {
            LookaheadPolicy::GlobalMin => base,
            LookaheadPolicy::Adaptive => {
                let t_star = (0..cfg.constrains.len())
                    .filter(|&i| cfg.constrains[i])
                    .map(|i| cfg.board.read(i, parity))
                    .min()
                    .unwrap_or(u64::MAX);
                // Boundary strictly after T*, clamped to [base, ∞); jump
                // at most to one window past the deadline (further grid
                // points are unreachable this run).
                let cap = (cfg.deadline.as_nanos() / window + 1) * window;
                let ext = t_star
                    .checked_div(window)
                    .map_or(u64::MAX, |q| q.saturating_add(1).saturating_mul(window))
                    .min(cap);
                base.max(SimTime::from_nanos(ext))
            }
        };
        let stepped = (next.as_nanos() - (base.as_nanos() - window)) / window;
        stats.windows_committed += stepped;
        if stepped > 1 {
            stats.extended_commits += 1;
        }
    }
    eng.run_until(cfg.deadline);
    stats.wall_run_nanos += run_started.elapsed().as_nanos() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy shard world: each shard holds a counter; flights add to it after
    /// one window of flight time.
    struct PingWorld {
        shard: usize,
        shards: usize,
        value: u64,
        staged: Vec<(usize, u64)>,
        log: Vec<(u64, usize, u64)>,
    }

    impl ShardWorld<crate::engine::NoEvent> for PingWorld {
        type Flight = (u64, usize, u64);

        fn flush_outbound(&mut self, sink: &mut Vec<(usize, Self::Flight)>) {
            for (dst, v) in self.staged.drain(..) {
                sink.push((dst, (0, self.shard, v)));
            }
        }

        fn deliver(
            &mut self,
            _ctx: &mut Ctx<'_, Self, crate::engine::NoEvent>,
            flights: &mut Vec<Self::Flight>,
        ) {
            flights.sort_unstable();
            for f in flights.drain(..) {
                self.value += f.2;
                self.log.push(f);
            }
        }
    }

    fn ping_engines(n: usize) -> Vec<Engine<PingWorld>> {
        (0..n)
            .map(|shard| {
                let mut eng = Engine::new(PingWorld {
                    shard,
                    shards: n,
                    value: 0,
                    staged: Vec::new(),
                    log: Vec::new(),
                });
                // Every 3µs each shard sends its shard id + tick to the next
                // shard around the ring.
                fn tick(
                    world: &mut PingWorld,
                    ctx: &mut Ctx<'_, PingWorld, crate::engine::NoEvent>,
                ) {
                    let dst = (world.shard + 1) % world.shards;
                    let stamp = ctx.now().as_nanos();
                    world.staged.push((dst, stamp + world.shard as u64));
                    ctx.schedule_after(SimDuration::from_nanos(3_000), tick);
                }
                eng.schedule_after(SimDuration::from_nanos(3_000), tick);
                eng
            })
            .collect()
    }

    type ShardState = (u64, Vec<(u64, usize, u64)>);

    fn run_sharded_policy(n: usize, windows: u64, policy: LookaheadPolicy) -> Vec<ShardState> {
        let mut se = ShardedEngine::new(ping_engines(n), SimDuration::from_nanos(1_000));
        se.set_policy(policy);
        se.run_for(SimDuration::from_nanos(windows));
        (0..n)
            .map(|i| {
                let w = se.engine(i).world();
                (w.value, w.log.clone())
            })
            .collect()
    }

    fn run_sharded(n: usize, windows: u64) -> Vec<ShardState> {
        run_sharded_policy(n, windows, LookaheadPolicy::Adaptive)
    }

    #[test]
    fn windowed_run_is_deterministic_across_repeats() {
        let a = run_sharded(4, 50_000);
        for _ in 0..5 {
            assert_eq!(a, run_sharded(4, 50_000));
        }
    }

    #[test]
    fn adaptive_matches_global_min_policy() {
        for n in [2, 3, 4] {
            assert_eq!(
                run_sharded_policy(n, 50_000, LookaheadPolicy::Adaptive),
                run_sharded_policy(n, 50_000, LookaheadPolicy::GlobalMin),
                "policies diverged at {n} shards"
            );
        }
    }

    #[test]
    fn all_flights_arrive() {
        // 50µs run, sends every 3µs => 16 sends per shard, ring topology
        // means each shard also receives 16 flights.
        let res = run_sharded(3, 50_000);
        for (_, log) in &res {
            assert_eq!(log.len(), 16);
        }
    }

    #[test]
    fn adaptive_policy_commits_multiple_windows_when_idle() {
        // Ticks every 3 windows: between ticks the fleet is provably idle,
        // so the adaptive policy must take fewer barriers than one per
        // window while the per-window baseline takes all of them.
        let mut adaptive = ShardedEngine::new(ping_engines(2), SimDuration::from_nanos(1_000));
        adaptive.run_for(SimDuration::from_nanos(60_000));
        let mut global = ShardedEngine::new(ping_engines(2), SimDuration::from_nanos(1_000));
        global.set_policy(LookaheadPolicy::GlobalMin);
        global.run_for(SimDuration::from_nanos(60_000));
        let a = adaptive.shard_stats(0);
        let g = global.shard_stats(0);
        assert_eq!(g.barrier_waits, 60, "baseline: one barrier per window");
        assert_eq!(g.windows_committed, 60);
        assert_eq!(a.windows_committed, 60, "same grid, fewer rendezvous");
        assert!(
            a.barrier_waits < g.barrier_waits,
            "extension must skip barriers ({} vs {})",
            a.barrier_waits,
            g.barrier_waits
        );
        assert!(a.extended_commits > 0);
    }

    #[test]
    fn unlinked_shard_does_not_constrain_peers() {
        // Shard 2 is isolated (no outbound links): its dense local schedule
        // must not drag shards 0/1 to every boundary. PingWorld's ring
        // would send 2 → 0, so silence shard 2's sends via the topology
        // check only — the test uses a world where shard 2 never stages.
        let mut engines = ping_engines(3);
        // Shard 2: high-frequency local ticks that never send.
        let eng2 = Engine::new(PingWorld {
            shard: 2,
            shards: 3,
            value: 0,
            staged: Vec::new(),
            log: Vec::new(),
        });
        engines[2] = eng2;
        fn silent_tick(
            _world: &mut PingWorld,
            ctx: &mut Ctx<'_, PingWorld, crate::engine::NoEvent>,
        ) {
            ctx.schedule_after(SimDuration::from_nanos(200), silent_tick);
        }
        engines[2].schedule_after(SimDuration::from_nanos(200), silent_tick);
        let mut se = ShardedEngine::new(engines, SimDuration::from_nanos(1_000));
        let la = SimDuration::from_nanos(1_000);
        // Ring links among 0/1 only; shard 2 receives but never sends.
        se.set_topology(ShardTopology::from_pair_matrix(vec![
            vec![None, Some(la), None],
            vec![Some(la), None, None],
            vec![None, None, None],
        ]));
        se.run_for(SimDuration::from_nanos(30_000));
        let stats = se.shard_stats(0);
        // Sends every 3µs ⇒ the fleet-wide safe instant advances in 3µs
        // hops; with shard 2 excluded the extension fires.
        assert!(
            stats.extended_commits > 0,
            "isolated shard must not pin the fleet to the grid: {stats:?}"
        );
    }

    #[test]
    fn single_shard_fast_path_matches_plain_engine() {
        let mut solo = ping_engines(1).pop().unwrap();
        solo.run_for(SimDuration::from_nanos(20_000));
        // Single-shard ShardedEngine never exchanges, so the staged sends
        // simply accumulate; the fast path must behave exactly like the
        // plain engine (which also never exchanges).
        let mut se = ShardedEngine::single(ping_engines(1).pop().unwrap());
        se.run_for(SimDuration::from_nanos(20_000));
        assert_eq!(solo.world().staged, se.engine(0).world().staged);
        assert_eq!(solo.now(), se.now());
    }

    #[test]
    fn clocks_agree_after_run() {
        let mut se = ShardedEngine::new(ping_engines(4), SimDuration::from_nanos(1_000));
        // Deadline off the window grid: tail run past the last boundary.
        se.run_until(SimTime::from_nanos(10_500));
        for i in 0..4 {
            assert_eq!(se.engine(i).now(), SimTime::from_nanos(10_500));
        }
        // And exactly on the grid: the boundary exchange still precedes the
        // inclusive tail.
        se.run_until(SimTime::from_nanos(20_000));
        for i in 0..4 {
            assert_eq!(se.engine(i).now(), SimTime::from_nanos(20_000));
        }
    }

    #[test]
    fn pinning_survives_oversubscription() {
        // Pin every shard to core 0 (always present): the run must still
        // complete and agree with the unpinned one, however few cores the
        // host has.
        let mut pinned = ShardedEngine::new(ping_engines(3), SimDuration::from_nanos(1_000));
        pinned.set_pinning(Some(vec![0, 0, 0]));
        pinned.run_for(SimDuration::from_nanos(30_000));
        let want = run_sharded(3, 30_000);
        let got: Vec<ShardState> = (0..3)
            .map(|i| {
                let w = pinned.engine(i).world();
                (w.value, w.log.clone())
            })
            .collect();
        assert_eq!(want, got);
    }

    #[test]
    #[should_panic(expected = "lookahead window must be positive")]
    fn zero_window_rejected() {
        let _ = ShardedEngine::new(ping_engines(2), SimDuration::from_nanos(0));
    }

    #[test]
    #[should_panic(expected = "below the window")]
    fn topology_with_short_pair_lookahead_rejected() {
        let mut se = ShardedEngine::new(ping_engines(2), SimDuration::from_nanos(1_000));
        se.set_topology(ShardTopology::from_pair_matrix(vec![
            vec![None, Some(SimDuration::from_nanos(500))],
            vec![Some(SimDuration::from_nanos(500)), None],
        ]));
    }
}
