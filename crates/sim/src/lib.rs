//! # reflex-sim — deterministic discrete-event simulation substrate
//!
//! The foundation of the ReFlex reproduction: every other crate in the
//! workspace models its component (Flash device, network fabric, dataplane
//! thread, …) as state advanced by events on the [`Engine`]'s virtual clock.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-granularity virtual time,
//! * [`Engine`] — a deterministic event queue over a user-defined world,
//! * [`SimRng`] / [`Zipf`] — seeded randomness and workload distributions,
//! * [`Histogram`] — HDR-style latency histograms (p95 is the paper's
//!   headline metric),
//! * [`RateSeries`] / [`Counter`] — throughput and token-rate recorders.
//!
//! # Examples
//!
//! ```
//! use reflex_sim::{Engine, Histogram, SimDuration, SimRng, SimTime};
//!
//! struct World {
//!     rng: SimRng,
//!     lat: Histogram,
//! }
//!
//! let mut engine = Engine::new(World { rng: SimRng::seed(1), lat: Histogram::new() });
//! // Issue 1000 "requests" whose service time is lognormal around 80us.
//! for i in 0..1000u64 {
//!     let at = SimTime::from_nanos(i * 1_000);
//!     engine.schedule_at(at, move |w: &mut World, ctx| {
//!         let svc = w.rng.lognormal(SimDuration::from_micros(80), 0.1);
//!         let started = ctx.now();
//!         ctx.schedule_after(svc, move |w: &mut World, ctx| {
//!             w.lat.record(ctx.now() - started);
//!         });
//!     });
//! }
//! engine.run_to_completion();
//! assert_eq!(engine.world().lat.count(), 1000);
//! let p95 = engine.world().lat.p95().as_micros_f64();
//! assert!(p95 > 80.0 && p95 < 120.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
mod engine;
mod hist;
mod rng;
mod series;
mod shard;
mod slab;
mod time;

pub use engine::{Ctx, Engine, EngineProbe, EventFn, EventHandle, NoEvent, Step, TypedEvent};
pub use hist::Histogram;
pub use rng::{SimRng, Zipf};
pub use series::{Counter, RatePoint, RateSeries};
pub use shard::{LookaheadPolicy, ShardStats, ShardTopology, ShardWorld, ShardedEngine};
pub use slab::{PoolKey, SlabPool};
pub use time::{SimDuration, SimTime};
