//! Virtual time types for the discrete-event engine.
//!
//! All simulated time is kept in integer nanoseconds. Two newtypes keep
//! instants and durations statically distinct ([`SimTime`] and
//! [`SimDuration`]); mixing them up is a compile error rather than a subtle
//! latency-accounting bug.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It only
/// advances; the engine never schedules events in the past.
///
/// # Examples
///
/// ```
/// use reflex_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_nanos(5_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use reflex_sim::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// assert_eq!(d.as_micros_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        if micros <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((micros * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(7).as_nanos(), 7_000_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t0 = SimTime::from_micros(10);
        let t1 = t0 + SimDuration::from_micros(5);
        assert_eq!(t1 - t0, SimDuration::from_micros(5));
        assert_eq!(t1 - SimDuration::from_micros(15), SimTime::ZERO);

        let mut t = SimTime::ZERO;
        t += SimDuration::from_nanos(42);
        assert_eq!(t.as_nanos(), 42);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_float_conversions() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
        let d = SimDuration::from_micros(3);
        assert!((d.as_micros_f64() - 3.0).abs() < 1e-12);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 1_500);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_micros(4);
        assert_eq!(d * 3, SimDuration::from_micros(12));
        assert_eq!(d / 2, SimDuration::from_micros(2));
        let total: SimDuration = (0..4).map(|_| d).sum();
        assert_eq!(total, SimDuration::from_micros(16));
    }

    #[test]
    fn display_units_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_micros(1).to_string(), "t+1.000us");
    }

    #[test]
    fn min_max_pick_correct_ends() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_nanos(5);
        let db = SimDuration::from_nanos(9);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
        assert_eq!(db.saturating_sub(da).as_nanos(), 4);
        assert_eq!(da.saturating_sub(db), SimDuration::ZERO);
    }
}
