//! A counting global allocator for allocation-budget tests.
//!
//! Only compiled under the `alloc-count` feature. Install it in a test
//! binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: reflex_sim::alloc_count::CountingAlloc = reflex_sim::alloc_count::CountingAlloc;
//! ```
//!
//! then bracket the region under test with [`allocations`] snapshots. The
//! counters are global and monotonic: tests sharing one process must
//! serialize themselves (e.g. behind a `Mutex`) so another thread's
//! allocations do not bleed into a measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still hits the allocator; count it as one.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations (alloc + realloc calls) since process start.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
