//! Time-series recorders for throughput and token-rate plots.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Accumulates per-interval event counts and reports them as rates —
/// used for the IOPS and tokens/s series in Figures 5 and 6.
///
/// # Examples
///
/// ```
/// use reflex_sim::{RateSeries, SimDuration, SimTime};
///
/// let mut s = RateSeries::new(SimDuration::from_millis(10));
/// s.add(SimTime::from_millis(1), 100);
/// s.add(SimTime::from_millis(12), 50);
/// s.finish(SimTime::from_millis(20));
/// let points = s.points();
/// assert_eq!(points.len(), 2);
/// assert!((points[0].rate_per_sec - 10_000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateSeries {
    interval: SimDuration,
    current_start: SimTime,
    current_count: u64,
    points: Vec<RatePoint>,
}

/// One interval of a [`RateSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Interval start instant.
    pub at: SimTime,
    /// Events counted in this interval.
    pub count: u64,
    /// Events per second of simulated time.
    pub rate_per_sec: f64,
}

impl RateSeries {
    /// Creates a series that aggregates counts per `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "rate interval must be positive");
        RateSeries {
            interval,
            current_start: SimTime::ZERO,
            current_count: 0,
            points: Vec::new(),
        }
    }

    fn roll_to(&mut self, at: SimTime) {
        while at >= self.current_start + self.interval {
            let count = self.current_count;
            let rate = count as f64 / self.interval.as_secs_f64();
            self.points.push(RatePoint {
                at: self.current_start,
                count,
                rate_per_sec: rate,
            });
            self.current_start += self.interval;
            self.current_count = 0;
        }
    }

    /// Adds `count` events at instant `at`. Instants must be non-decreasing.
    pub fn add(&mut self, at: SimTime, count: u64) {
        self.roll_to(at);
        self.current_count += count;
    }

    /// Flushes the final (possibly partial) interval up to `end`.
    pub fn finish(&mut self, end: SimTime) {
        self.roll_to(end);
        if self.current_count > 0 {
            let span = end.saturating_since(self.current_start);
            if !span.is_zero() {
                let rate = self.current_count as f64 / span.as_secs_f64();
                self.points.push(RatePoint {
                    at: self.current_start,
                    count: self.current_count,
                    rate_per_sec: rate,
                });
            }
            self.current_count = 0;
        }
    }

    /// The recorded interval points.
    pub fn points(&self) -> &[RatePoint] {
        &self.points
    }

    /// Mean rate across all completed intervals (0 when empty).
    pub fn mean_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.rate_per_sec).sum::<f64>() / self.points.len() as f64
    }
}

/// A running counter with a start instant, reporting an overall average rate.
///
/// # Examples
///
/// ```
/// use reflex_sim::{Counter, SimTime};
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.add(7);
/// assert_eq!(c.total(), 10);
/// assert!((c.rate_per_sec(SimTime::from_secs(2)) - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    total: u64,
    since: SimTime,
}

impl Counter {
    /// Creates a zeroed counter starting at `t=0`.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.total += 1;
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resets the count and marks `at` as the new measurement origin.
    pub fn reset_at(&mut self, at: SimTime) {
        self.total = 0;
        self.since = at;
    }

    /// Average events/second between the origin and `now` (0 if no time passed).
    pub fn rate_per_sec(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.since);
        if span.is_zero() {
            0.0
        } else {
            self.total as f64 / span.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_series_buckets_counts() {
        let mut s = RateSeries::new(SimDuration::from_millis(10));
        s.add(SimTime::from_millis(0), 5);
        s.add(SimTime::from_millis(5), 5);
        s.add(SimTime::from_millis(15), 20);
        s.finish(SimTime::from_millis(30));
        let pts = s.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].count, 10);
        assert_eq!(pts[1].count, 20);
        assert_eq!(pts[2].count, 0);
        assert!((pts[0].rate_per_sec - 1_000.0).abs() < 1e-9);
        assert!((pts[1].rate_per_sec - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_series_emits_empty_intervals() {
        let mut s = RateSeries::new(SimDuration::from_millis(1));
        s.add(SimTime::from_millis(0), 1);
        s.add(SimTime::from_millis(3), 1);
        s.finish(SimTime::from_millis(4));
        let pts = s.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[1].count, 0);
        assert_eq!(pts[2].count, 0);
    }

    #[test]
    fn partial_tail_interval_uses_actual_span() {
        let mut s = RateSeries::new(SimDuration::from_millis(10));
        s.add(SimTime::from_millis(12), 5);
        s.finish(SimTime::from_millis(17));
        // First interval [0,10) empty, tail [10,17) holds 5 over 7ms.
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[1].rate_per_sec - 5.0 / 0.007).abs() < 1.0);
    }

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        assert_eq!(c.rate_per_sec(SimTime::ZERO), 0.0);
        c.add(100);
        assert!((c.rate_per_sec(SimTime::from_millis(100)) - 1_000.0).abs() < 1e-9);
        c.reset_at(SimTime::from_secs(1));
        c.incr();
        assert_eq!(c.total(), 1);
        assert!((c.rate_per_sec(SimTime::from_secs(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_rate_averages_points() {
        let mut s = RateSeries::new(SimDuration::from_millis(10));
        s.add(SimTime::from_millis(0), 10);
        s.add(SimTime::from_millis(10), 30);
        s.finish(SimTime::from_millis(20));
        assert!((s.mean_rate() - 2_000.0).abs() < 1e-9);
    }
}
