//! RocksDB-style LSM key-value store I/O model (paper Figure 7c).
//!
//! The paper runs `db_bench` on a 43GB RocksDB with the database and WAL
//! on Flash and the page cache limited via cgroups. What the storage
//! backend sees is:
//!
//! * **bulkload** — large sequential SST writes (compaction-style chunks);
//!   Flash write bandwidth is the bottleneck, so local and remote perform
//!   almost identically;
//! * **randomread** — point lookups: per-op CPU (memtable/block-cache
//!   probing, bloom filters) plus a synchronous 4KB data-block read on a
//!   block-cache miss;
//! * **readwhilewriting** — the same lookups with a concurrent writer
//!   stream (WAL appends plus amortized flush/compaction traffic).
//!
//! Slowdowns versus local Flash reproduce the paper's ordering: iSCSI
//! suffers heavily on read benchmarks, ReFlex stays close to local.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reflex_flash::IoType;
use reflex_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::backend::Backend;

/// The three `db_bench` routines of Figure 7c.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbBenchmark {
    /// `bulkload` (BL): populate the database.
    BulkLoad,
    /// `randomread` (RR): uniform point lookups.
    RandomRead,
    /// `readwhilewriting` (RwW): lookups with a concurrent writer.
    ReadWhileWriting,
}

impl DbBenchmark {
    /// All three in the paper's order.
    pub fn all() -> [DbBenchmark; 3] {
        [
            DbBenchmark::BulkLoad,
            DbBenchmark::RandomRead,
            DbBenchmark::ReadWhileWriting,
        ]
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DbBenchmark::BulkLoad => "BL",
            DbBenchmark::RandomRead => "RR",
            DbBenchmark::ReadWhileWriting => "RwW",
        }
    }
}

/// LSM workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmConfig {
    /// Database size in bytes (paper: 43GB).
    pub db_bytes: u64,
    /// Reader threads (`db_bench --threads`).
    pub threads: u32,
    /// Block-cache + page-cache hit percentage for point lookups.
    pub cache_hit_pct: u8,
    /// Per-op CPU: memtable probe, bloom filters, comparator, decode.
    pub compute_per_op: SimDuration,
    /// Point lookups to perform (RR / RwW).
    pub read_ops: u64,
    /// Concurrent writer rate in puts/sec (RwW).
    pub writer_puts_per_sec: f64,
    /// Device page-writes per put, amortizing WAL + flush + compaction
    /// (leveled write amplification on an 800B value).
    pub write_pages_per_put: f64,
    /// SST chunk size for bulkload/compaction writes.
    pub sst_chunk: u32,
    /// Bulkload write amplification.
    pub bulkload_write_amp: f64,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            db_bytes: 43 * 1024 * 1024 * 1024,
            threads: 8,
            cache_hit_pct: 80,
            compute_per_op: SimDuration::from_micros_f64(22.0),
            read_ops: 2_000_000,
            writer_puts_per_sec: 30_000.0,
            write_pages_per_put: 1.3,
            sst_chunk: 128 * 1024,
            bulkload_write_amp: 1.2,
        }
    }
}

impl LsmConfig {
    /// A scaled-down configuration for fast tests.
    pub fn small() -> Self {
        LsmConfig {
            db_bytes: 2 * 1024 * 1024 * 1024,
            read_ops: 120_000,
            ..LsmConfig::default()
        }
    }
}

/// Runs `bench` against `backend`; returns the end-to-end execution time.
///
/// # Panics
///
/// Panics if the config is degenerate (zero threads/ops).
pub fn run_db_bench(
    bench: DbBenchmark,
    config: &LsmConfig,
    backend: &mut Backend,
    seed: u64,
) -> SimDuration {
    assert!(
        config.threads > 0 && config.read_ops > 0,
        "degenerate config"
    );
    match bench {
        DbBenchmark::BulkLoad => run_bulkload(config, backend),
        DbBenchmark::RandomRead => run_reads(config, backend, seed, false),
        DbBenchmark::ReadWhileWriting => run_reads(config, backend, seed, true),
    }
}

fn run_bulkload(config: &LsmConfig, backend: &mut Backend) -> SimDuration {
    let total = (config.db_bytes as f64 * config.bulkload_write_amp) as u64;
    let chunks = total / config.sst_chunk as u64;
    let qd = 4usize;
    let io_threads = backend.client_threads();
    let mut heap: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new();
    let mut issued = 0u64;
    let mut addr = 0u64;
    let capacity = backend.capacity();
    let issue = |backend: &mut Backend, now: SimTime, addr: &mut u64, issued: &mut u64| {
        let a = *addr % (capacity - config.sst_chunk as u64);
        *addr += config.sst_chunk as u64;
        let done = backend.submit(
            now,
            (*issued as usize) % io_threads,
            IoType::Write,
            a,
            config.sst_chunk,
        );
        *issued += 1;
        done
    };
    for _ in 0..qd.min(chunks as usize) {
        let done = issue(backend, SimTime::ZERO, &mut addr, &mut issued);
        heap.push(Reverse(done));
    }
    let mut last = SimTime::ZERO;
    while let Some(Reverse(done)) = heap.pop() {
        last = last.max(done);
        if issued < chunks {
            let next = issue(backend, done, &mut addr, &mut issued);
            heap.push(Reverse(next));
        }
    }
    last.saturating_since(SimTime::ZERO)
}

fn run_reads(
    config: &LsmConfig,
    backend: &mut Backend,
    seed: u64,
    with_writer: bool,
) -> SimDuration {
    let mut rng = SimRng::seed(seed);
    let io_threads = backend.client_threads();
    // Reserve the last I/O thread for the writer stream when present.
    let read_io_threads = if with_writer && io_threads > 1 {
        io_threads - 1
    } else {
        io_threads
    };

    // Reader state: each thread performs ops sequentially.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    for th in 0..config.threads as usize {
        heap.push(Reverse((SimTime::from_nanos(th as u64 * 700), th)));
    }
    let mut remaining = config.read_ops;
    let mut completed_at = SimTime::ZERO;
    let mut io_rr = 0usize;

    // Writer pacing.
    let write_page_gap = if with_writer {
        Some(SimDuration::from_secs_f64(
            1.0 / (config.writer_puts_per_sec * config.write_pages_per_put),
        ))
    } else {
        None
    };
    let mut next_write = SimTime::ZERO;
    let mut wal_addr = 0u64;
    let capacity = backend.capacity();

    while let Some(Reverse((ready, th))) = heap.pop() {
        // Interleave the background writer up to the current instant.
        if let Some(gap) = write_page_gap {
            while next_write <= ready {
                let a = wal_addr % (capacity - 4096);
                wal_addr += 4096;
                let _ = backend.submit(next_write, io_threads - 1, IoType::Write, a, 4096);
                next_write += gap;
            }
        }

        if remaining == 0 {
            continue;
        }
        remaining -= 1;
        // Per-op CPU on the reader thread, then a data-block read on miss.
        let after_cpu = ready + config.compute_per_op;
        let done = if rng.below(100) < config.cache_hit_pct as u64 {
            after_cpu
        } else {
            let addr = rng.below(config.db_bytes / 4096) * 4096 % (capacity - 4096);
            let io_th = io_rr % read_io_threads;
            io_rr += 1;
            backend.submit(after_cpu, io_th, IoType::Read, addr, 4096)
        };
        completed_at = completed_at.max(done);
        heap.push(Reverse((done, th)));
        if remaining == 0 && heap.iter().all(|Reverse((t, _))| *t >= done) {
            // All threads idle past the final op.
        }
    }
    completed_at.saturating_since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendProfile;
    use reflex_flash::device_a;

    fn runtime(bench: DbBenchmark, profile: BackendProfile) -> f64 {
        let mut b = Backend::new(profile, device_a(), 6, 31);
        run_db_bench(bench, &LsmConfig::small(), &mut b, 3).as_secs_f64()
    }

    #[test]
    fn bulkload_is_flash_bound_everywhere() {
        let local = runtime(DbBenchmark::BulkLoad, BackendProfile::local_nvme());
        let reflex = runtime(DbBenchmark::BulkLoad, BackendProfile::reflex_remote());
        let iscsi = runtime(DbBenchmark::BulkLoad, BackendProfile::iscsi_remote());
        // Paper: BL performance almost equal between local and remote.
        assert!(
            (0.95..1.10).contains(&(reflex / local)),
            "BL reflex {}",
            reflex / local
        );
        assert!(
            (0.95..1.15).contains(&(iscsi / local)),
            "BL iscsi {}",
            iscsi / local
        );
        // Sanity: 2GB * 1.2 at ~260MB/s Flash write bandwidth ≈ 10s.
        assert!((5.0..20.0).contains(&local), "BL local runtime {local}s");
    }

    #[test]
    fn randomread_slowdown_ordering() {
        let local = runtime(DbBenchmark::RandomRead, BackendProfile::local_nvme());
        let reflex = runtime(DbBenchmark::RandomRead, BackendProfile::reflex_remote());
        let iscsi = runtime(DbBenchmark::RandomRead, BackendProfile::iscsi_remote());
        let s_reflex = reflex / local;
        let s_iscsi = iscsi / local;
        // Paper: iSCSI 32%, ReFlex <4%. Our synchronous-read client model
        // overweights per-read latency, so ReFlex lands somewhat higher
        // (documented in EXPERIMENTS.md); the ordering must hold clearly.
        assert!(
            (1.0..1.35).contains(&s_reflex),
            "RR reflex slowdown {s_reflex:.3}"
        );
        assert!(
            (1.2..1.8).contains(&s_iscsi),
            "RR iscsi slowdown {s_iscsi:.3}"
        );
        assert!(s_iscsi > s_reflex + 0.1, "iSCSI must be clearly worse");
    }

    #[test]
    fn readwhilewriting_amplifies_iscsi_pain() {
        let rr_iscsi = runtime(DbBenchmark::RandomRead, BackendProfile::iscsi_remote())
            / runtime(DbBenchmark::RandomRead, BackendProfile::local_nvme());
        let rww_iscsi = runtime(
            DbBenchmark::ReadWhileWriting,
            BackendProfile::iscsi_remote(),
        ) / runtime(DbBenchmark::ReadWhileWriting, BackendProfile::local_nvme());
        // The writer stream competes for the iSCSI core.
        assert!(
            rww_iscsi > rr_iscsi - 0.1,
            "RwW iscsi {rww_iscsi:.3} vs RR {rr_iscsi:.3}"
        );
        let rww_reflex = runtime(
            DbBenchmark::ReadWhileWriting,
            BackendProfile::reflex_remote(),
        ) / runtime(DbBenchmark::ReadWhileWriting, BackendProfile::local_nvme());
        assert!(
            (0.95..1.4).contains(&rww_reflex),
            "RwW reflex slowdown {rww_reflex:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let a = runtime(DbBenchmark::RandomRead, BackendProfile::local_nvme());
        let b = runtime(DbBenchmark::RandomRead, BackendProfile::local_nvme());
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
