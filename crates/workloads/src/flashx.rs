//! FlashX-style semi-external-memory graph analytics (paper Figure 7b).
//!
//! FlashGraph/FlashX keeps vertex state in RAM and streams edge lists from
//! Flash through the SAFS user-space filesystem. The I/O behaviour of each
//! algorithm is what matters for the local-vs-remote comparison, so the
//! model executes each algorithm as a sequence of *phases*: a number of
//! edge pages to fetch (sequentially for scan-style iterations, randomly
//! for frontier-driven ones) with per-page compute overlapped via a
//! bounded prefetch window per worker thread.
//!
//! Calibration: per-page compute costs are set so the algorithms' page
//! demand sits near the paper's operating points — PR just above the
//! iSCSI per-core ceiling (~15% slowdown), BFS/SCC well above it (~40%),
//! with ReFlex's remote bandwidth far above all demands (1–4% slowdowns).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reflex_flash::IoType;
use reflex_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::backend::Backend;

/// Graph dimensions. Defaults to SOC-LiveJournal1 (4.8M vertices, 68.9M
/// edges), the paper's dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Vertex count.
    pub vertices: u64,
    /// Directed edge count.
    pub edges: u64,
}

impl Default for GraphSpec {
    fn default() -> Self {
        GraphSpec {
            vertices: 4_800_000,
            edges: 68_900_000,
        }
    }
}

impl GraphSpec {
    /// Edge-data pages on Flash (8 bytes per edge, 4KB pages).
    pub fn edge_pages(&self) -> u64 {
        (self.edges * 8).div_ceil(4096)
    }
}

/// The four benchmarks of Figure 7b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphAlgo {
    /// Weakly connected components.
    Wcc,
    /// PageRank (fixed iteration count).
    PageRank,
    /// Breadth-first search.
    Bfs,
    /// Strongly connected components (forward + backward sweeps).
    Scc,
}

impl GraphAlgo {
    /// All four benchmarks in the paper's order.
    pub fn all() -> [GraphAlgo; 4] {
        [
            GraphAlgo::Wcc,
            GraphAlgo::PageRank,
            GraphAlgo::Bfs,
            GraphAlgo::Scc,
        ]
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GraphAlgo::Wcc => "WCC",
            GraphAlgo::PageRank => "PR",
            GraphAlgo::Bfs => "BFS",
            GraphAlgo::Scc => "SCC",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    pages: u64,
    sequential: bool,
    compute_per_page: SimDuration,
}

fn phases(algo: GraphAlgo, graph: &GraphSpec) -> Vec<Phase> {
    let p = graph.edge_pages();
    let frac = |f: f64| ((p as f64 * f) as u64).max(1);
    match algo {
        GraphAlgo::PageRank => {
            // 12 full edge scans; demand ≈ 4 threads / 51us = 78K pages/s.
            (0..12)
                .map(|_| Phase {
                    pages: p,
                    sequential: true,
                    compute_per_page: SimDuration::from_micros_f64(51.0),
                })
                .collect()
        }
        GraphAlgo::Wcc => {
            // Label propagation with a shrinking active set.
            [1.0, 0.7, 0.35, 0.12, 0.05, 0.02, 0.008]
                .iter()
                .map(|&f| Phase {
                    pages: frac(f),
                    sequential: true,
                    compute_per_page: SimDuration::from_micros_f64(47.0),
                })
                .collect()
        }
        GraphAlgo::Bfs => {
            // Frontier-driven levels: random page fetches, demand ≈ 98K/s.
            [0.001, 0.01, 0.08, 0.25, 0.35, 0.2, 0.08, 0.02, 0.008, 0.002]
                .iter()
                .map(|&f| Phase {
                    pages: frac(f),
                    sequential: false,
                    compute_per_page: SimDuration::from_micros_f64(41.0),
                })
                .collect()
        }
        GraphAlgo::Scc => {
            // Forward + backward sweeps (two WCC-like passes at BFS-like
            // compute intensity).
            let sweep = [1.0, 0.6, 0.25, 0.08, 0.02, 0.005];
            sweep
                .iter()
                .chain(sweep.iter())
                .map(|&f| Phase {
                    pages: frac(f),
                    sequential: false,
                    compute_per_page: SimDuration::from_micros_f64(41.0),
                })
                .collect()
        }
    }
}

/// Configuration of a FlashX run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashXConfig {
    /// Graph dimensions.
    pub graph: GraphSpec,
    /// Compute worker threads.
    pub threads: u32,
    /// Prefetch window (outstanding pages) per worker.
    pub prefetch: u32,
}

impl Default for FlashXConfig {
    fn default() -> Self {
        FlashXConfig {
            graph: GraphSpec::default(),
            threads: 4,
            prefetch: 8,
        }
    }
}

/// Runs `algo` on `backend`; returns the end-to-end execution time.
///
/// # Panics
///
/// Panics if the config has zero threads or prefetch.
pub fn run_flashx(
    algo: GraphAlgo,
    config: &FlashXConfig,
    backend: &mut Backend,
    seed: u64,
) -> SimDuration {
    assert!(
        config.threads > 0 && config.prefetch > 0,
        "degenerate config"
    );
    let mut rng = SimRng::seed(seed);
    let phase_list = phases(algo, &config.graph);
    let mut now = SimTime::ZERO;
    let io_threads = backend.client_threads();
    let mut io_rr = 0usize;

    for phase in phase_list {
        // (completion, worker) heap; each worker keeps `prefetch` pages in
        // flight and serializes its per-page compute.
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
        let mut worker_busy = vec![now; config.threads as usize];
        let mut seq_cursor = 0u64;
        let mut issued = 0u64;
        let capacity = backend.capacity();
        let next_addr = |_rng: &mut SimRng, seq_cursor: &mut u64, backend: &mut Backend| {
            if phase.sequential {
                let addr = (*seq_cursor * 4096) % (capacity - 4096);
                *seq_cursor += 1;
                addr
            } else {
                backend.random_page_addr()
            }
        };

        for w in 0..config.threads as usize {
            for _ in 0..config.prefetch {
                if issued >= phase.pages {
                    break;
                }
                let addr = next_addr(&mut rng, &mut seq_cursor, backend);
                let io_th = io_rr % io_threads;
                io_rr += 1;
                let done = backend.submit(now, io_th, IoType::Read, addr, 4096);
                heap.push(Reverse((done, w)));
                issued += 1;
            }
        }
        let mut phase_end = now;
        while let Some(Reverse((done, w))) = heap.pop() {
            // Per-page compute on the worker that consumed the page.
            let ready = done.max(worker_busy[w]) + phase.compute_per_page;
            worker_busy[w] = ready;
            phase_end = phase_end.max(ready);
            if issued < phase.pages {
                let addr = next_addr(&mut rng, &mut seq_cursor, backend);
                let io_th = io_rr % io_threads;
                io_rr += 1;
                let next = backend.submit(ready, io_th, IoType::Read, addr, 4096);
                heap.push(Reverse((next, w)));
                issued += 1;
            }
        }
        now = phase_end;
    }
    now.saturating_since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendProfile;
    use reflex_flash::device_a;

    fn small() -> FlashXConfig {
        FlashXConfig {
            // A scaled-down graph keeps unit tests fast; the bench harness
            // runs the full SOC-LiveJournal1 dimensions.
            graph: GraphSpec {
                vertices: 480_000,
                edges: 6_890_000,
            },
            threads: 4,
            prefetch: 8,
        }
    }

    fn runtime(algo: GraphAlgo, profile: BackendProfile) -> f64 {
        let mut b = Backend::new(profile, device_a(), 6, 21);
        run_flashx(algo, &small(), &mut b, 9).as_secs_f64()
    }

    #[test]
    fn reflex_slowdown_is_small_for_all_algorithms() {
        for algo in GraphAlgo::all() {
            let local = runtime(algo, BackendProfile::local_nvme());
            let reflex = runtime(algo, BackendProfile::reflex_remote());
            let slowdown = reflex / local;
            assert!(
                (0.99..1.12).contains(&slowdown),
                "{}: reflex slowdown {slowdown:.3}",
                algo.name()
            );
        }
    }

    #[test]
    fn iscsi_hurts_bfs_and_scc_more_than_pr() {
        let slow = |algo| {
            let local = runtime(algo, BackendProfile::local_nvme());
            let iscsi = runtime(algo, BackendProfile::iscsi_remote());
            iscsi / local
        };
        let pr = slow(GraphAlgo::PageRank);
        let bfs = slow(GraphAlgo::Bfs);
        let scc = slow(GraphAlgo::Scc);
        assert!((1.05..1.30).contains(&pr), "PR iscsi slowdown {pr:.3}");
        assert!(
            bfs > pr + 0.08,
            "BFS ({bfs:.3}) must suffer more than PR ({pr:.3})"
        );
        assert!((1.2..1.7).contains(&bfs), "BFS iscsi slowdown {bfs:.3}");
        assert!((1.2..1.7).contains(&scc), "SCC iscsi slowdown {scc:.3}");
    }

    #[test]
    fn edge_pages_math() {
        let g = GraphSpec::default();
        // 68.9M edges x 8B = 551.2MB -> ~134.6K pages.
        assert!((130_000..140_000).contains(&g.edge_pages()));
    }

    #[test]
    fn deterministic_runtime() {
        let a = runtime(GraphAlgo::Wcc, BackendProfile::local_nvme());
        let b = runtime(GraphAlgo::Wcc, BackendProfile::local_nvme());
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
