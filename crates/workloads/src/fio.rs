//! FIO — the flexible I/O tester (paper Figure 7a).
//!
//! A [`FioJob`] is a closed-loop workload: `threads` application threads
//! each keep `queue_depth` I/Os outstanding against a [`Backend`]. The
//! latency-throughput curve of Figure 7a is produced by sweeping
//! `(threads, queue_depth)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reflex_flash::IoType;
use reflex_sim::{Histogram, SimDuration, SimRng, SimTime};

use crate::backend::Backend;

/// A closed-loop FIO-style job description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioJob {
    /// Application threads.
    pub threads: u32,
    /// Outstanding I/Os per thread.
    pub queue_depth: u32,
    /// Request size in bytes.
    pub io_size: u32,
    /// Percentage of reads (0–100).
    pub read_pct: u8,
    /// Warmup before measurement.
    pub warmup: SimDuration,
    /// Measured window.
    pub runtime: SimDuration,
}

impl Default for FioJob {
    fn default() -> Self {
        FioJob {
            threads: 1,
            queue_depth: 32,
            io_size: 4096,
            read_pct: 100,
            warmup: SimDuration::from_millis(50),
            runtime: SimDuration::from_millis(300),
        }
    }
}

/// Results of a [`FioJob`] run.
#[derive(Debug, Clone)]
pub struct FioReport {
    /// Latency histogram (all ops).
    pub latency: Histogram,
    /// Completed operations per second.
    pub iops: f64,
    /// Goodput in megabytes per second.
    pub mb_per_sec: f64,
}

impl FioJob {
    /// Runs the job against `backend`.
    ///
    /// # Panics
    ///
    /// Panics if the job has zero threads/queue depth, or more threads
    /// than the backend has client threads.
    pub fn run(&self, backend: &mut Backend, seed: u64) -> FioReport {
        assert!(self.threads > 0 && self.queue_depth > 0, "degenerate job");
        assert!(
            self.threads as usize <= backend.client_threads(),
            "job threads exceed backend client threads"
        );
        let mut rng = SimRng::seed(seed);
        let mut heap: BinaryHeap<Reverse<(SimTime, usize, SimTime)>> = BinaryHeap::new();
        // (completion, thread, issued_at)
        let issue = |backend: &mut Backend,
                     rng: &mut SimRng,
                     heap: &mut BinaryHeap<Reverse<(SimTime, usize, SimTime)>>,
                     now: SimTime,
                     th: usize| {
            let addr = backend.random_page_addr();
            let op = if rng.below(100) < self.read_pct as u64 {
                IoType::Read
            } else {
                IoType::Write
            };
            let done = backend.submit(now, th, op, addr, self.io_size);
            heap.push(Reverse((done, th, now)));
        };

        for th in 0..self.threads as usize {
            for q in 0..self.queue_depth {
                let start =
                    SimTime::from_nanos((th as u64 * self.queue_depth as u64 + q as u64) * 500);
                issue(backend, &mut rng, &mut heap, start, th);
            }
        }

        let measure_start = SimTime::ZERO + self.warmup;
        let end = measure_start + self.runtime;
        let mut latency = Histogram::new();
        let mut completed = 0u64;
        while let Some(Reverse((done, th, issued_at))) = heap.pop() {
            if done >= end {
                break;
            }
            if done >= measure_start {
                completed += 1;
                if issued_at >= measure_start {
                    latency.record(done.saturating_since(issued_at));
                }
            }
            issue(backend, &mut rng, &mut heap, done, th);
        }
        let secs = self.runtime.as_secs_f64();
        FioReport {
            latency,
            iops: completed as f64 / secs,
            mb_per_sec: completed as f64 * self.io_size as f64 / secs / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendProfile;
    use reflex_flash::device_a;

    #[test]
    fn local_fio_scales_with_threads() {
        let run = |threads: u32| {
            let mut b = Backend::new(BackendProfile::local_nvme(), device_a(), threads, 11);
            FioJob {
                threads,
                queue_depth: 32,
                ..FioJob::default()
            }
            .run(&mut b, 1)
        };
        let one = run(1);
        let five = run(5);
        assert!(
            five.iops > 2.5 * one.iops,
            "local FIO scaling {} -> {}",
            one.iops,
            five.iops
        );
        // Five threads approach the device's 1M read-only IOPS.
        assert!(
            (750_000.0..1_050_000.0).contains(&five.iops),
            "5-thread local FIO {}",
            five.iops
        );
    }

    #[test]
    fn reflex_fio_caps_at_10gbe() {
        let mut b = Backend::new(BackendProfile::reflex_remote(), device_a(), 6, 12);
        let rep = FioJob {
            threads: 6,
            queue_depth: 48,
            ..FioJob::default()
        }
        .run(&mut b, 2);
        // 10GbE ~ 1.25GB/s minus framing: ~1150-1200 MB/s of 4KB payloads.
        assert!(
            (1_000.0..1_250.0).contains(&rep.mb_per_sec),
            "reflex FIO MB/s {}",
            rep.mb_per_sec
        );
    }

    #[test]
    fn iscsi_fio_is_roughly_4x_slower_than_reflex() {
        let mut ir = Backend::new(BackendProfile::iscsi_remote(), device_a(), 6, 13);
        let iscsi = FioJob {
            threads: 6,
            queue_depth: 48,
            ..FioJob::default()
        }
        .run(&mut ir, 3);
        let mut rr = Backend::new(BackendProfile::reflex_remote(), device_a(), 6, 13);
        let reflex = FioJob {
            threads: 6,
            queue_depth: 48,
            ..FioJob::default()
        }
        .run(&mut rr, 3);
        let ratio = reflex.iops / iscsi.iops;
        assert!(
            (3.0..6.0).contains(&ratio),
            "reflex/iscsi FIO throughput ratio {ratio}"
        );
    }

    #[test]
    fn latency_grows_with_queue_depth() {
        let mut b = Backend::new(BackendProfile::local_nvme(), device_a(), 1, 14);
        let shallow = FioJob {
            queue_depth: 1,
            ..FioJob::default()
        }
        .run(&mut b, 4);
        let mut b = Backend::new(BackendProfile::local_nvme(), device_a(), 1, 14);
        let deep = FioJob {
            queue_depth: 64,
            ..FioJob::default()
        }
        .run(&mut b, 4);
        assert!(
            deep.latency.p95() > shallow.latency.p95(),
            "deeper queues must queue"
        );
        assert!(
            deep.iops > shallow.iops,
            "deeper queues must add throughput"
        );
    }
}
