//! Storage backends for legacy-application workloads (paper §5.6).
//!
//! Figure 7 runs unmodified Linux applications against three block
//! devices: the local kernel NVMe driver, the ReFlex remote block device
//! driver, and iSCSI. [`Backend`] models those data paths at the
//! per-request level on top of the simulated Flash device:
//!
//! * per-client-thread CPU cost (the blk-mq hardware-context threads and
//!   their per-message TCP ceilings),
//! * a remote server serialization point with its per-request CPU (iSCSI:
//!   ~14µs ⇒ 70K IOPS/core; ReFlex: ~1.2µs ⇒ 850K IOPS/core),
//! * a shared network link with finite bandwidth (10GbE),
//! * fixed protocol latency on top of the device.

use reflex_flash::{CmdId, DeviceProfile, FlashDevice, IoType, NvmeCommand, QpId};
use reflex_sim::{SimDuration, SimRng, SimTime};

/// Which data path a [`Backend`] models.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendProfile {
    /// Human-readable name.
    pub name: String,
    /// Client-side CPU per I/O (block layer + driver + stack) per thread.
    pub client_per_req_cpu: SimDuration,
    /// Fixed one-way protocol latency added on the request path (beyond
    /// CPU and wire time); sampled lognormally.
    pub request_latency_median: SimDuration,
    /// Fixed latency added on the response path.
    pub response_latency_median: SimDuration,
    /// Lognormal sigma for both overheads.
    pub latency_sigma: f64,
    /// Remote server CPU per request (`None` for local access).
    pub server_per_req_cpu: Option<SimDuration>,
    /// Network bandwidth in bytes/sec (`None` for local access).
    pub link_bandwidth: Option<f64>,
}

impl BackendProfile {
    /// The local kernel NVMe driver (interrupt-driven; FIO needs ~5
    /// threads to saturate the device, §5.6).
    pub fn local_nvme() -> Self {
        BackendProfile {
            name: "local".to_owned(),
            client_per_req_cpu: SimDuration::from_micros_f64(4.8), // ~200K IOPS/thread
            request_latency_median: SimDuration::from_micros_f64(3.0),
            response_latency_median: SimDuration::from_micros_f64(9.0), // IRQ + block layer
            latency_sigma: 0.25,
            server_per_req_cpu: None,
            link_bandwidth: None,
        }
    }

    /// The ReFlex remote block device driver: one blk-mq hardware context
    /// per client core, each a Linux TCP socket (~70K msgs/s/thread), a
    /// polling dataplane server and a 10GbE link.
    pub fn reflex_remote() -> Self {
        BackendProfile {
            name: "reflex".to_owned(),
            client_per_req_cpu: SimDuration::from_micros_f64(14.3), // Linux TCP thread
            request_latency_median: SimDuration::from_micros_f64(13.0),
            response_latency_median: SimDuration::from_micros_f64(17.0),
            latency_sigma: 0.25,
            server_per_req_cpu: Some(SimDuration::from_micros_f64(1.18)),
            link_bandwidth: Some(1.25e9), // 10GbE
        }
    }

    /// The Linux iSCSI data path: heavy protocol processing and copies on
    /// both sides, ~70K IOPS/core at the target.
    pub fn iscsi_remote() -> Self {
        BackendProfile {
            name: "iscsi".to_owned(),
            client_per_req_cpu: SimDuration::from_micros_f64(14.3),
            request_latency_median: SimDuration::from_micros_f64(55.0),
            response_latency_median: SimDuration::from_micros_f64(60.0),
            latency_sigma: 0.35,
            server_per_req_cpu: Some(SimDuration::from_micros_f64(14.3)),
            link_bandwidth: Some(1.25e9),
        }
    }
}

/// A block-storage data path applications submit I/O to.
///
/// # Examples
///
/// ```
/// use reflex_flash::{device_a, IoType};
/// use reflex_sim::SimTime;
/// use reflex_workloads::{Backend, BackendProfile};
///
/// let mut b = Backend::new(BackendProfile::local_nvme(), device_a(), 4, 1);
/// let done = b.submit(SimTime::ZERO, 0, IoType::Read, 4096, 4096);
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct Backend {
    profile: BackendProfile,
    device: FlashDevice,
    qp: QpId,
    client_busy: Vec<SimTime>,
    server_busy: SimTime,
    link_up_busy: SimTime,
    link_down_busy: SimTime,
    rng: SimRng,
    seq: u64,
}

impl Backend {
    /// Creates a backend with `client_threads` application I/O threads
    /// over a fresh preconditioned device.
    ///
    /// # Panics
    ///
    /// Panics if `client_threads` is zero.
    pub fn new(
        profile: BackendProfile,
        mut device_profile: DeviceProfile,
        client_threads: u32,
        seed: u64,
    ) -> Self {
        assert!(client_threads > 0, "need at least one client thread");
        device_profile.sq_depth = 1 << 20;
        let mut rng = SimRng::seed(seed);
        let mut device = FlashDevice::new(device_profile, rng.fork());
        device.precondition();
        let qp = device.create_queue_pair();
        Backend {
            profile,
            device,
            qp,
            client_busy: vec![SimTime::ZERO; client_threads as usize],
            server_busy: SimTime::ZERO,
            link_up_busy: SimTime::ZERO,
            link_down_busy: SimTime::ZERO,
            rng,
            seq: 0,
        }
    }

    /// The backend's profile.
    pub fn profile(&self) -> &BackendProfile {
        &self.profile
    }

    /// Number of client I/O threads.
    pub fn client_threads(&self) -> usize {
        self.client_busy.len()
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.device.profile().capacity_bytes
    }

    /// A uniformly random page-aligned address.
    pub fn random_page_addr(&mut self) -> u64 {
        self.device.random_page_addr()
    }

    fn wire_time(&self, bytes: u64) -> SimDuration {
        match self.profile.link_bandwidth {
            Some(bw) => SimDuration::from_secs_f64((bytes as f64 + 78.0) / bw),
            None => SimDuration::ZERO,
        }
    }

    /// Submits one I/O on client thread `thread`; returns the instant the
    /// application sees the completion. Calls should be made in roughly
    /// non-decreasing `now` order (drive with a completion heap).
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range or `len` is zero.
    pub fn submit(
        &mut self,
        now: SimTime,
        thread: usize,
        op: IoType,
        addr: u64,
        len: u32,
    ) -> SimTime {
        assert!(len > 0, "zero-length I/O");
        // Client thread CPU (issue side).
        let busy = &mut self.client_busy[thread];
        let t_issued = now.max(*busy) + self.profile.client_per_req_cpu;
        *busy = t_issued;

        // Request wire time (writes carry data).
        let req_bytes = if op.is_read() { 0 } else { len as u64 };
        let mut t = t_issued;
        if self.profile.link_bandwidth.is_some() {
            let ser = self.wire_time(req_bytes);
            let depart = t.max(self.link_up_busy) + ser;
            self.link_up_busy = depart;
            t = depart;
        }
        t += self.rng.lognormal(
            self.profile.request_latency_median,
            self.profile.latency_sigma,
        );

        // Remote server serialization point.
        if let Some(cpu) = self.profile.server_per_req_cpu {
            let srv = t.max(self.server_busy) + cpu;
            self.server_busy = srv;
            t = srv;
        }

        // Device.
        let id = CmdId(self.seq);
        self.seq += 1;
        let cmd = match op {
            IoType::Read => NvmeCommand::read(id, addr, len),
            IoType::Write => NvmeCommand::write(id, addr, len),
        };
        let _ = self.device.poll_completions(t, self.qp, usize::MAX);
        let dev_done = self.device.submit(t, self.qp, cmd).expect("deep sq");

        // Response wire time (reads carry data back).
        let mut t = dev_done;
        if self.profile.link_bandwidth.is_some() {
            let resp_bytes = if op.is_read() { len as u64 } else { 0 };
            let ser = self.wire_time(resp_bytes);
            let depart = t.max(self.link_down_busy) + ser;
            self.link_down_busy = depart;
            t = depart;
        }
        t + self.rng.lognormal(
            self.profile.response_latency_median,
            self.profile.latency_sigma,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_flash::device_a;

    fn unloaded_read_us(profile: BackendProfile) -> f64 {
        let mut b = Backend::new(profile, device_a(), 1, 3);
        let mut total = 0.0;
        let n = 500;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now += SimDuration::from_micros(300);
            let addr = b.random_page_addr();
            let done = b.submit(now, 0, IoType::Read, addr, 4096);
            total += done.saturating_since(now).as_micros_f64();
        }
        total / n as f64
    }

    #[test]
    fn unloaded_latency_ordering() {
        let local = unloaded_read_us(BackendProfile::local_nvme());
        let reflex = unloaded_read_us(BackendProfile::reflex_remote());
        let iscsi = unloaded_read_us(BackendProfile::iscsi_remote());
        // Local kernel driver ~90us, ReFlex block driver noticeably higher
        // (client-side Linux block+TCP), iSCSI much higher.
        assert!((85.0..105.0).contains(&local), "local {local}");
        assert!(reflex > local + 25.0, "reflex {reflex} vs local {local}");
        assert!(iscsi > reflex + 60.0, "iscsi {iscsi} vs reflex {reflex}");
        assert!(iscsi < 350.0, "iscsi {iscsi} absurdly high");
    }

    #[test]
    fn iscsi_server_caps_throughput() {
        let mut b = Backend::new(BackendProfile::iscsi_remote(), device_a(), 8, 4);
        // Closed-loop hammer: 8 threads x QD 8.
        let mut heap = std::collections::BinaryHeap::new();
        for th in 0..8usize {
            for _ in 0..8 {
                let addr = b.random_page_addr();
                let done = b.submit(SimTime::ZERO, th, IoType::Read, addr, 4096);
                heap.push(std::cmp::Reverse((done, th)));
            }
        }
        let mut completed = 0u64;
        let end = SimTime::from_millis(300);
        while let Some(std::cmp::Reverse((done, th))) = heap.pop() {
            if done > end {
                break;
            }
            completed += 1;
            let addr = b.random_page_addr();
            let next = b.submit(done, th, IoType::Read, addr, 4096);
            heap.push(std::cmp::Reverse((next, th)));
        }
        let rate = completed as f64 / 0.3;
        assert!(
            (55_000.0..80_000.0).contains(&rate),
            "iscsi closed-loop rate {rate}"
        );
    }

    #[test]
    fn reflex_block_driver_needs_multiple_threads_for_line_rate() {
        // One Linux TCP thread caps at ~70K msgs/s; four threads reach
        // ~280K, close to the 10GbE 4KB ceiling (§4.2 / §5.6).
        let run = |threads: u32| {
            let mut b = Backend::new(BackendProfile::reflex_remote(), device_a(), threads, 5);
            let mut heap = std::collections::BinaryHeap::new();
            for th in 0..threads as usize {
                for _ in 0..32 {
                    let addr = b.random_page_addr();
                    let done = b.submit(SimTime::ZERO, th, IoType::Read, addr, 4096);
                    heap.push(std::cmp::Reverse((done, th)));
                }
            }
            let mut completed = 0u64;
            let end = SimTime::from_millis(200);
            while let Some(std::cmp::Reverse((done, th))) = heap.pop() {
                if done > end {
                    break;
                }
                completed += 1;
                let addr = b.random_page_addr();
                let next = b.submit(done, th, IoType::Read, addr, 4096);
                heap.push(std::cmp::Reverse((next, th)));
            }
            completed as f64 / 0.2
        };
        let one = run(1);
        let four = run(4);
        assert!((55_000.0..80_000.0).contains(&one), "1-thread {one}");
        assert!(four > 3.0 * one, "4 threads should scale: {four} vs {one}");
        assert!(four < 310_000.0, "10GbE must cap 4KB reads: {four}");
    }

    #[test]
    fn writes_carry_data_on_the_request_path() {
        let mut b = Backend::new(BackendProfile::reflex_remote(), device_a(), 1, 6);
        // A large write's wire time shows up in its completion.
        let t0 = SimTime::ZERO;
        let w = b.submit(t0, 0, IoType::Write, 0, 128 * 1024);
        let wlat = w.saturating_since(t0).as_micros_f64();
        // 128KB at 10GbE ~ 105us of serialization + write buffer.
        assert!(wlat > 100.0, "large write latency {wlat}");
    }
}
