//! # reflex-workloads — application workloads from the paper's evaluation
//!
//! Models the legacy Linux applications of §5.6 at the I/O level, running
//! against three storage data paths (local NVMe driver, ReFlex remote
//! block device, iSCSI):
//!
//! * [`FioJob`] — the flexible I/O tester (Figure 7a),
//! * [`run_flashx`] — FlashX graph analytics: WCC, PageRank, BFS, SCC
//!   (Figure 7b),
//! * [`run_db_bench`] — RocksDB `db_bench`: bulkload, randomread,
//!   readwhilewriting (Figure 7c),
//!
//! all driven through a calibrated [`Backend`] model over the simulated
//! Flash device.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod fio;
mod flashx;
mod lsm;

pub use backend::{Backend, BackendProfile};
pub use fio::{FioJob, FioReport};
pub use flashx::{run_flashx, FlashXConfig, GraphAlgo, GraphSpec};
pub use lsm::{run_db_bench, DbBenchmark, LsmConfig};
