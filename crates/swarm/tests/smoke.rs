//! Smoke: a handful of generated seeds run the full oracle battery
//! end-to-end under plain `cargo test`. The real sweep depth lives in
//! CI (`cargo run -p reflex-swarm -- --seeds 100`); this catches a
//! runner/generator wiring break immediately in any local test run.

use reflex_swarm::{run_seed, FamilyStatus, OracleFamily, RunConfig};

#[test]
fn first_seeds_pass_all_oracles() {
    let cfg = RunConfig::default();
    for seed in 0..8 {
        let outcome = run_seed(seed, &cfg);
        assert!(
            outcome.violations.is_empty(),
            "seed {seed} violated: {:?}",
            outcome.violations
        );
        assert!(outcome.completed_ios > 0, "seed {seed} moved no IOs");
        // Every family reports a status — checked or vacuous-with-reason.
        for family in OracleFamily::ALL {
            assert!(
                outcome.families.iter().any(|(f, _)| *f == family),
                "seed {seed} reported no status for {family}"
            );
        }
        // IO conservation and identity apply to every case.
        for family in [OracleFamily::IoConservation, OracleFamily::ShardIdentity] {
            let status = outcome
                .families
                .iter()
                .find(|(f, _)| *f == family)
                .map(|(_, s)| *s);
            assert_eq!(
                status,
                Some(FamilyStatus::Checked),
                "{family} must never be vacuous"
            );
        }
    }
}
