//! Replays the committed regression corpus under plain `cargo test`.
//!
//! `tests/corpus/seeds.txt` holds seeds (and shrunk case lines) that
//! either pin a regime the generator must keep covering or once caught
//! a real bug. Each entry runs through the full oracle battery; a
//! violation here means a previously-fixed bug is back.
//!
//! This harness has no counting global allocator, so the alloc-budget
//! family is vacuous here — the `reflex-swarm` binary (smoke-tested in
//! CI) covers it.

use reflex_swarm::{run_case, FamilyStatus, OracleFamily, RunConfig, SwarmCase};

const CORPUS: &str = include_str!("corpus/seeds.txt");

fn corpus_cases() -> Vec<(String, SwarmCase)> {
    CORPUS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let case = if let Ok(seed) = line.parse::<u64>() {
                SwarmCase::from_seed(seed)
            } else {
                line.parse::<SwarmCase>()
                    .unwrap_or_else(|e| panic!("corpus line does not parse: {e}\n  {line}"))
            };
            (line.to_string(), case)
        })
        .collect()
}

/// Every corpus entry passes the full oracle battery.
#[test]
fn corpus_replays_clean() {
    let cfg = RunConfig::default();
    let mut failures = Vec::new();
    for (line, case) in corpus_cases() {
        let outcome = run_case(&case, &cfg);
        for v in &outcome.violations {
            failures.push(format!("corpus entry `{line}`: {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "regression corpus found violations:\n{}",
        failures.join("\n")
    );
}

/// The corpus keeps all four sim-level families live (alloc-budget needs
/// the binary's global allocator, so it is asserted by the CI smoke run
/// instead): if a generator change makes one vacuous across the whole
/// corpus, the regression net has silently lost a family.
#[test]
fn corpus_exercises_families() {
    let cfg = RunConfig::default();
    let mut checked = std::collections::BTreeSet::new();
    for (_, case) in corpus_cases() {
        let outcome = run_case(&case, &cfg);
        for (family, status) in &outcome.families {
            if matches!(status, FamilyStatus::Checked) {
                checked.insert(*family);
            }
        }
    }
    for family in [
        OracleFamily::IoConservation,
        OracleFamily::LeaseConservation,
        OracleFamily::QuorumEpoch,
        OracleFamily::ShardIdentity,
    ] {
        assert!(
            checked.contains(&family),
            "family {family} is vacuous on every corpus entry"
        );
    }
}
