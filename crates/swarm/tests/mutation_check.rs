//! The mutation check as a test: with the lease-skim mutation flipped
//! on, the swarm's lease-conservation oracle MUST fail — a pass would
//! mean the oracle is vacuous and the whole family is decorative.
//!
//! Compiled only under `--features mutation` (CI runs it as a dedicated
//! step; see DESIGN.md §12). The skim switch is process-global, so this
//! file holds exactly one test.
#![cfg(feature = "mutation")]

use reflex_swarm::{run_seed, OracleFamily, RunConfig};

#[test]
fn lease_skim_mutation_is_caught() {
    reflex_qos::mutation::set_lease_skim(true);
    let cfg = RunConfig::default();
    // The sweep must catch the skim within the CI seed budget; in
    // practice the first split-dataplane case (seed 1) already fails.
    let mut caught = false;
    for seed in 0..20 {
        let outcome = run_seed(seed, &cfg);
        if outcome
            .violations
            .iter()
            .any(|v| v.family == OracleFamily::LeaseConservation)
        {
            caught = true;
            break;
        }
    }
    reflex_qos::mutation::set_lease_skim(false);
    assert!(
        caught,
        "lease-skim mutation survived 20 seeds — the lease-conservation \
         oracle can no longer see a real accounting bug"
    );
}
