//! Proptest mirrors of the byte-driven fuzz bodies.
//!
//! The `fuzz/` workspace member drives the same `check_*` functions as
//! libFuzzer-style binaries; these mirrors run them under plain
//! `cargo test` with no nightly toolchain, so every CI run fuzzes the
//! decode and accounting edges at least a few hundred cases deep.
//! Raise the depth with `PROPTEST_CASES=10000 cargo test -p reflex-swarm`.

use proptest::prelude::*;
use reflex_swarm::harness::{
    check_fault_plan, check_lease_ops, check_pool_cookie, check_sched_ops, check_wire_roundtrip,
};

proptest! {
    /// Wire decode/encode on arbitrary buffers: short, exact, oversized.
    #[test]
    fn wire_roundtrip_mirror(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        check_wire_roundtrip(&bytes);
    }

    /// PoolKey/cookie packing and slab insert/take/stale-take sequences.
    #[test]
    fn pool_cookie_mirror(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        check_pool_cookie(&bytes);
    }

    /// Two lease-ledger replicas under arbitrary give/take/round/exchange
    /// sequences converge and conserve.
    #[test]
    fn lease_ops_mirror(bytes in prop::collection::vec(any::<u8>(), 0..384)) {
        check_lease_ops(&bytes);
    }

    /// QoS scheduler spend stays bounded by generation across arbitrary
    /// enqueue/schedule/renegotiate sequences.
    #[test]
    fn sched_ops_mirror(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        check_sched_ops(&bytes);
    }

    /// Fault-schedule parser never panics; accepted text round-trips.
    #[test]
    fn fault_plan_mirror(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        check_fault_plan(&bytes);
    }
}

// A structured generator biased toward *parseable* fault plans, so the
// round-trip arm is exercised every run (pure byte soup almost never
// parses).
proptest! {
    #[test]
    fn fault_plan_mirror_structured(
        seed in any::<u64>(),
        at_ms in 1u64..50,
        dur_ms in 1u64..20,
        rate_pct in 0u64..100,
        kind in 0u8..4,
    ) {
        let event = match kind {
            0 => format!("@{at_ms}ms loss rate=0.{rate_pct:02} for={dur_ms}ms"),
            1 => format!("@{at_ms}ms transient rate=0.{rate_pct:02} for={dur_ms}ms"),
            2 => format!("@{at_ms}ms gc extra=500us for={dur_ms}ms"),
            _ => format!("@{at_ms}ms stall thread=0 for={dur_ms}ms"),
        };
        let text = format!("seed={seed}\n{event}\n");
        check_fault_plan(text.as_bytes());
    }
}
