//! Executes one [`SwarmCase`] and holds it to the five oracle families.
//!
//! Two executions per case: the **oracle run** at one shard (where
//! every workload generator is reachable for the stop-and-drain
//! conservation check) and the **identity partner** at the case's
//! sharded/split configuration. The identity family asserts the two
//! produce byte-identical reports, which transfers every mono-run
//! oracle verdict to the parallel execution. Fault campaigns pin
//! execution to one shard by design, so their partner is an exact
//! re-run — a plain determinism check.
//!
//! Healthy core cases additionally run an **alloc pass**: the same
//! scenario, telemetry off, unified dataplane, measured under the
//! counting allocator (when the embedding binary installed it).

use std::sync::Mutex;

use reflex_core::{AddrPattern, RetryPolicy, ServerConfig, Testbed, TestbedReport, WorkloadSpec};
use reflex_faults::install;
use reflex_qos::{SloSpec, TenantClass, TenantId};
use reflex_replication::{ReadPolicy, ReplReport, ReplTestbed, ReplWorkloadSpec};
use reflex_sim::SimDuration;

use crate::gen::{SwarmCase, TenantSpec, Topology};
use crate::oracle::{
    check_alloc, check_epochs, check_identity, check_io_conservation, check_lease_ledger,
    check_membership, FamilyStatus, OracleFamily, Violation,
};

/// Drain window after generators stop. Sized for the worst admissible
/// backlog: a saturated device queue plus full retry chains (4 attempts
/// with exponential backoff off a 10ms timeout) — the swarm found that a
/// 200ms drain flags healthy overloaded cases as conservation leaks.
const DRAIN: SimDuration = SimDuration::from_millis(1500);

/// Allocation budget for the swarm's short windows. Looser than the
/// bench gate's 0.05/IO (which amortizes over a 300ms closed-loop
/// steady state) because arbitrary generated scenarios pay one-off
/// container growth over fewer IOs — but still far below one
/// allocation per IO, so any per-request heap traffic fails.
const ALLOC_BUDGET_PER_IO: f64 = 0.2;

/// How the embedding binary exposes the counting allocator.
#[derive(Clone, Copy)]
pub struct RunConfig {
    /// Reads the process-wide allocation counter, if the binary
    /// installed `reflex_sim::alloc_count::CountingAlloc` as its global
    /// allocator. `None` marks the alloc family vacuous.
    pub alloc_counter: Option<fn() -> u64>,
}

impl Default for RunConfig {
    /// No allocation counter: the alloc-budget family reports vacuous.
    fn default() -> Self {
        RunConfig {
            alloc_counter: None,
        }
    }
}

impl std::fmt::Debug for RunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunConfig")
            .field("alloc_counter", &self.alloc_counter.is_some())
            .finish()
    }
}

/// Everything the swarm learned from one case.
#[derive(Debug)]
pub struct CaseOutcome {
    /// The case that ran.
    pub case: SwarmCase,
    /// Broken invariants (empty = pass).
    pub violations: Vec<Violation>,
    /// Status of all five families on this case.
    pub families: Vec<(OracleFamily, FamilyStatus)>,
    /// Non-fatal observations (dropped tenants, clamps).
    pub notes: Vec<String>,
    /// Completed IOs observed by the oracle run.
    pub completed_ios: u64,
}

impl CaseOutcome {
    /// True when any oracle family fired.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Runs `case` under every applicable oracle family.
pub fn run_case(case: &SwarmCase, cfg: &RunConfig) -> CaseOutcome {
    match case.topology {
        Topology::Core { .. } => run_core_case(case, cfg),
        Topology::Replicated { .. } => run_repl_case(case),
    }
}

// ------------------------------------------------------------------
// Core topology

struct CoreArtifacts {
    fingerprint: String,
    completed: u64,
    notes: Vec<String>,
}

fn core_fingerprint(r: &TestbedReport) -> String {
    // Same exclusion as the sharded_identity tests: engine_events and
    // telemetry are execution artifacts, not simulated results.
    format!(
        "window={:?} workloads={:?} threads={:?} tokens={} device={:?} renegs={:?}",
        r.window,
        r.workloads,
        r.threads,
        r.token_usage_per_sec.to_bits(),
        r.device,
        r.renegotiations
    )
}

fn core_spec(i: usize, t: &TenantSpec) -> WorkloadSpec {
    let class = match t.lc {
        Some((iops, pct, p95_us)) => {
            TenantClass::LatencyCritical(SloSpec::new(iops, pct, SimDuration::from_micros(p95_us)))
        }
        None => TenantClass::BestEffort,
    };
    let name = format!("t{i}");
    let tenant = TenantId(i as u32 + 1);
    let mut spec = if t.open_loop {
        WorkloadSpec::open_loop(&name, tenant, class, t.rate_iops as f64)
    } else {
        WorkloadSpec::closed_loop(&name, tenant, class, t.depth.max(1))
    };
    spec.read_pct = t.read_pct;
    spec.conns = t.conns.max(1);
    spec.client_threads = t.client_threads.max(1);
    spec.client_machine = t.client_machine;
    spec.io_size = t.io_size;
    if t.zipf_permille > 0 {
        spec.addr_pattern = AddrPattern::Zipfian {
            theta_permille: t.zipf_permille as u16,
        };
    }
    if t.retry {
        spec = spec.with_retry(RetryPolicy::standard());
    }
    spec
}

/// Builds, populates and runs a core testbed through warmup + measure.
/// Returns `None` only if every tenant was rejected (a generator bug —
/// reported as an IO-conservation violation upstream).
fn run_core(
    case: &SwarmCase,
    shards: usize,
    split: bool,
    telemetry: bool,
) -> (Testbed, CoreArtifacts) {
    let Topology::Core {
        server_threads,
        clients,
        ..
    } = case.topology
    else {
        unreachable!("run_core on non-core case")
    };
    let mut tb = Testbed::builder()
        .seed(case.seed)
        .server(ServerConfig {
            threads: server_threads as u32,
            max_threads: server_threads as u32,
            ..ServerConfig::default()
        })
        .client_machines(vec![reflex_net::StackProfile::ix_tcp(); clients])
        .build();
    let mut notes = Vec::new();
    if !case.faults.is_empty() {
        let _stats = install(&case.faults, &mut tb);
    }
    if split {
        tb.enable_split_dataplane()
            .expect("generator only splits hook-free scenarios");
    }
    let mut tb = tb.with_shards(shards);
    if let Some(clamp) = tb.shard_clamp() {
        notes.push(format!("shard clamp: {clamp}"));
    }
    if telemetry {
        // After with_shards: the shared handle installs on every shard.
        tb.enable_telemetry();
    }
    for (i, t) in case.tenants.iter().enumerate() {
        if let Err(e) = tb.add_workload(core_spec(i, t)) {
            notes.push(format!("tenant t{i} rejected: {e}"));
        }
    }
    tb.run(SimDuration::from_millis(case.warmup_ms));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(case.measure_ms));
    let report = tb.report();
    let completed = report
        .threads
        .iter()
        .filter_map(|t| t.stats.as_ref())
        .map(|s| s.completed)
        .sum();
    let artifacts = CoreArtifacts {
        fingerprint: core_fingerprint(&report),
        completed,
        notes,
    };
    (tb, artifacts)
}

fn run_core_case(case: &SwarmCase, cfg: &RunConfig) -> CaseOutcome {
    let Topology::Core { shards, split, .. } = case.topology else {
        unreachable!()
    };
    let mut violations = Vec::new();
    let mut families = Vec::new();

    // Oracle run: one shard, so stop-and-drain reaches every generator.
    let (mut tb, oracle_run) = run_core(case, 1, split, true);
    let mut notes = oracle_run.notes.clone();

    // Identity partner: the case's parallel configuration (or, for fault
    // campaigns — which pin execution to one shard by design — an exact
    // re-run, i.e. a determinism check).
    let (partner_shards, kind) = if case.faulty() {
        (1, "determinism")
    } else if shards > 1 {
        (shards, "mono-vs-sharded")
    } else {
        (2, "mono-vs-sharded")
    };
    let (_, partner) = run_core(case, partner_shards, split, true);
    check_identity(
        kind,
        &oracle_run.fingerprint,
        &partner.fingerprint,
        &mut violations,
    );
    families.push((OracleFamily::ShardIdentity, FamilyStatus::Checked));

    // Stop, drain, and hold the exit books to exact balance.
    tb.world_mut().stop_all_workloads();
    tb.run(DRAIN);
    match tb.telemetry_snapshot() {
        Some(snapshot) => {
            check_io_conservation(&snapshot, &mut violations);
            families.push((OracleFamily::IoConservation, FamilyStatus::Checked));
        }
        None => families.push((
            OracleFamily::IoConservation,
            FamilyStatus::Vacuous("telemetry unavailable"),
        )),
    }

    // Lease conservation: the ledger identity when split, the global
    // token budget otherwise.
    if split {
        let (gives, accounted) = tb.lease_accounting().expect("split run installs a ledger");
        check_lease_ledger(gives, accounted, &mut violations);
        families.push((OracleFamily::LeaseConservation, FamilyStatus::Checked));
    } else {
        let report = tb.report();
        let strictest = case
            .tenants
            .iter()
            .filter_map(|t| t.lc)
            .map(|(_, _, p95)| p95)
            .min();
        match strictest {
            Some(p95_us) => {
                let budget = tb
                    .world()
                    .server()
                    .capacity()
                    .tokens_per_sec_at(SimDuration::from_micros(p95_us));
                if report.token_usage_per_sec > budget * 1.05 {
                    violations.push(Violation {
                        family: OracleFamily::LeaseConservation,
                        detail: format!(
                            "token spend {:.0}/s exceeds the device budget {budget:.0}/s \
                             at the strictest admitted SLO ({p95_us}us)",
                            report.token_usage_per_sec
                        ),
                    });
                }
                families.push((OracleFamily::LeaseConservation, FamilyStatus::Checked));
            }
            None => families.push((
                OracleFamily::LeaseConservation,
                FamilyStatus::Vacuous("no latency-critical tenant, no token reservation"),
            )),
        }
    }

    families.push((
        OracleFamily::QuorumEpoch,
        FamilyStatus::Vacuous("single-server topology has no membership"),
    ));

    // Alloc pass: healthy scenarios, telemetry off, unified mono
    // dataplane, longer windows so per-IO amortization is meaningful.
    match (cfg.alloc_counter, case.faulty()) {
        (Some(counter), false) => {
            let _gate = alloc_gate();
            let alloc_case = SwarmCase {
                warmup_ms: 150,
                measure_ms: 250,
                ..case.clone()
            };
            let (allocs, ios) = {
                let Topology::Core {
                    server_threads,
                    clients,
                    ..
                } = alloc_case.topology
                else {
                    unreachable!()
                };
                let mut tb = Testbed::builder()
                    .seed(alloc_case.seed)
                    .server(ServerConfig {
                        threads: server_threads as u32,
                        max_threads: server_threads as u32,
                        ..ServerConfig::default()
                    })
                    .client_machines(vec![reflex_net::StackProfile::ix_tcp(); clients])
                    .build();
                for (i, t) in alloc_case.tenants.iter().enumerate() {
                    let _ = tb.add_workload(core_spec(i, t));
                }
                tb.run(SimDuration::from_millis(alloc_case.warmup_ms));
                let completed = |tb: &Testbed| -> u64 {
                    tb.report()
                        .threads
                        .iter()
                        .filter_map(|t| t.stats.as_ref())
                        .map(|s| s.completed)
                        .sum()
                };
                let ios_before = completed(&tb);
                let before = counter();
                tb.run(SimDuration::from_millis(alloc_case.measure_ms));
                let after = counter();
                (after - before, completed(&tb) - ios_before)
            };
            check_alloc(allocs, ios, ALLOC_BUDGET_PER_IO, &mut violations);
            families.push((OracleFamily::AllocBudget, FamilyStatus::Checked));
        }
        (None, _) => families.push((
            OracleFamily::AllocBudget,
            FamilyStatus::Vacuous("no counting allocator installed"),
        )),
        (_, true) => families.push((
            OracleFamily::AllocBudget,
            FamilyStatus::Vacuous("fault hooks may legitimately allocate"),
        )),
    }

    notes.extend(partner.notes);
    CaseOutcome {
        case: case.clone(),
        violations,
        families,
        notes,
        completed_ios: oracle_run.completed,
    }
}

// ------------------------------------------------------------------
// Replicated topology

fn repl_fingerprint(r: &ReplReport) -> String {
    format!(
        "window={:?} workloads={:?} recoveries={:?}",
        r.window, r.workloads, r.recoveries
    )
}

struct ReplArtifacts {
    fingerprint: String,
    epochs: Vec<Vec<u32>>,
    completed: u64,
}

fn run_repl(case: &SwarmCase, shards: usize, sample: bool) -> (ReplTestbed, ReplArtifacts) {
    let Topology::Replicated {
        sites, replication, ..
    } = case.topology
    else {
        unreachable!("run_repl on non-replicated case")
    };
    let mut tb = ReplTestbed::builder()
        .sites(sites)
        .replication(replication)
        .seed(case.seed)
        .build()
        .with_shards(shards);
    tb.enable_telemetry();
    for (i, t) in case.tenants.iter().enumerate() {
        let (iops, pct, p95_us) = t.lc.expect("replicated tenants carry an SLO");
        let spec = ReplWorkloadSpec::open_loop(
            format!("t{i}"),
            TenantId(i as u32 + 1),
            SloSpec::new(iops, pct, SimDuration::from_micros(p95_us)),
            t.rate_iops as f64,
        )
        .with_read_policy(if t.quorum_read {
            ReadPolicy::Quorum
        } else {
            ReadPolicy::Primary
        })
        .with_namespace(i as u64 * (8 << 20), 8 << 20)
        .with_retry(RetryPolicy::standard());
        tb.add_workload(spec).expect("replicated workload admitted");
    }
    if !case.faults.is_empty() {
        let _stats = tb.install(&case.faults);
    }
    tb.run(SimDuration::from_millis(case.warmup_ms));
    tb.begin_measurement();
    // Slice the measured window so epoch monotonicity is observed at
    // several instants, not just at the end.
    let mut epochs = Vec::new();
    let slices: u64 = if sample { 4 } else { 1 };
    for _ in 0..slices {
        tb.run(SimDuration::from_millis(case.measure_ms) / slices);
        if sample {
            let w = tb.world();
            epochs.push((0..case.tenants.len()).map(|i| w.epoch(i)).collect());
        }
    }
    let report = tb.report();
    let completed = report
        .workloads
        .iter()
        .map(|w| (w.iops * case.measure_ms as f64 / 1_000.0) as u64)
        .sum();
    let artifacts = ReplArtifacts {
        fingerprint: repl_fingerprint(&report),
        epochs,
        completed,
    };
    (tb, artifacts)
}

fn run_repl_case(case: &SwarmCase) -> CaseOutcome {
    let Topology::Replicated {
        replication,
        shards,
        ..
    } = case.topology
    else {
        unreachable!()
    };
    let mut violations = Vec::new();
    let mut families = Vec::new();

    let (mut tb, oracle_run) = run_repl(case, 1, true);
    let report = tb.report();

    // Identity partner at the case's shard count (or a determinism
    // re-run when the case is already mono).
    let (partner_shards, kind) = if case.faulty() {
        (1, "determinism")
    } else if shards > 1 {
        (shards, "mono-vs-sharded")
    } else {
        (2, "mono-vs-sharded")
    };
    let (_, partner) = run_repl(case, partner_shards, false);
    check_identity(
        kind,
        &oracle_run.fingerprint,
        &partner.fingerprint,
        &mut violations,
    );
    families.push((OracleFamily::ShardIdentity, FamilyStatus::Checked));

    // Quorum/epoch family: sampled monotonicity + final membership.
    check_epochs(
        &oracle_run.epochs,
        report.recoveries.len(),
        case.faulty(),
        &mut violations,
    );
    for w_idx in 0..case.tenants.len() {
        check_membership(
            &tb.member_sites(w_idx),
            tb.world().primary_slot(w_idx),
            replication,
            case.faulty(),
            &mut violations,
        );
    }
    families.push((OracleFamily::QuorumEpoch, FamilyStatus::Checked));

    // Conservation after stop-and-drain, exactly like the core path.
    tb.world_mut().stop_all_workloads();
    tb.run(DRAIN);
    match tb.telemetry_snapshot() {
        Some(snapshot) => {
            check_io_conservation(&snapshot, &mut violations);
            families.push((OracleFamily::IoConservation, FamilyStatus::Checked));
        }
        None => families.push((
            OracleFamily::IoConservation,
            FamilyStatus::Vacuous("telemetry unavailable"),
        )),
    }

    families.push((
        OracleFamily::LeaseConservation,
        FamilyStatus::Vacuous("replicated testbed runs the unified token bucket"),
    ));
    families.push((
        OracleFamily::AllocBudget,
        FamilyStatus::Vacuous("replicated fan-out is gated by the bench alloc budget"),
    ));

    CaseOutcome {
        case: case.clone(),
        violations,
        families,
        notes: Vec::new(),
        completed_ios: oracle_run.completed,
    }
}

/// Convenience: derives the case from `seed` and runs it.
pub fn run_seed(seed: u64, cfg: &RunConfig) -> CaseOutcome {
    run_case(&SwarmCase::from_seed(seed), cfg)
}

// Process-wide guard so parallel test threads never interleave two
// runs' alloc measurements against the shared global counter.
static ALLOC_GATE: Mutex<()> = Mutex::new(());

/// Serializes alloc-measuring runs across threads. Returns a guard.
pub fn alloc_gate() -> std::sync::MutexGuard<'static, ()> {
    ALLOC_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
