//! The swarm CLI.
//!
//! ```text
//! reflex-swarm --seeds 100            # sweep seeds 0..100
//! reflex-swarm --seeds 100 --start 7  # sweep seeds 7..107
//! reflex-swarm --seed 42              # one seed, verbose
//! reflex-swarm --repro '<case line>'  # replay a shrunk case
//! reflex-swarm --corpus <file>        # replay a seed-per-line corpus
//! reflex-swarm --mutate               # (feature `mutation`) flip the
//!                                     # lease-skim bug on; the sweep
//!                                     # must fail, proving the oracles
//!                                     # can see a real accounting bug
//! ```
//!
//! Exit code 0 = every case passed; 1 = at least one oracle violation
//! (after printing shrunk repro lines); 2 = usage error.
//!
//! The binary installs the counting allocator, so the alloc-budget
//! family is live here (it is vacuous under harnesses that don't).

use std::collections::BTreeMap;
use std::process::ExitCode;

use reflex_swarm::{run_case, shrink, FamilyStatus, OracleFamily, RunConfig, SwarmCase};

#[global_allocator]
static ALLOC: reflex_sim::alloc_count::CountingAlloc = reflex_sim::alloc_count::CountingAlloc;

/// Re-runs spent minimizing one failing case.
const SHRINK_BUDGET: usize = 24;

struct Args {
    seeds: Option<u64>,
    start: u64,
    seed: Option<u64>,
    repro: Option<String>,
    corpus: Option<String>,
    mutate: bool,
    require_all_families: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: None,
        start: 0,
        seed: None,
        repro: None,
        corpus: None,
        mutate: false,
        require_all_families: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seeds" => {
                args.seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}"))?,
                )
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--repro" => args.repro = Some(value("--repro")?),
            "--corpus" => args.corpus = Some(value("--corpus")?),
            "--mutate" => args.mutate = true,
            "--require-all-families" => args.require_all_families = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.seeds.is_none() && args.seed.is_none() && args.repro.is_none() && args.corpus.is_none()
    {
        return Err("one of --seeds / --seed / --repro / --corpus is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("reflex-swarm: {e}");
            return ExitCode::from(2);
        }
    };

    if args.mutate {
        #[cfg(feature = "mutation")]
        {
            reflex_qos::mutation::set_lease_skim(true);
            eprintln!("reflex-swarm: MUTATION ACTIVE — lease skim on; this sweep must fail");
        }
        #[cfg(not(feature = "mutation"))]
        {
            eprintln!(
                "reflex-swarm: --mutate needs `--features mutation` (the deliberate bug is \
                 compiled out of normal builds)"
            );
            return ExitCode::from(2);
        }
    }

    let cfg = RunConfig {
        alloc_counter: Some(reflex_sim::alloc_count::allocations),
    };

    // Assemble the case list.
    let mut cases: Vec<(String, SwarmCase)> = Vec::new();
    if let Some(n) = args.seeds {
        for seed in args.start..args.start + n {
            cases.push((format!("seed {seed}"), SwarmCase::from_seed(seed)));
        }
    }
    if let Some(seed) = args.seed {
        cases.push((format!("seed {seed}"), SwarmCase::from_seed(seed)));
    }
    if let Some(line) = &args.repro {
        match line.parse::<SwarmCase>() {
            Ok(case) => cases.push(("repro".into(), case)),
            Err(e) => {
                eprintln!("reflex-swarm: bad --repro case: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &args.corpus {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reflex-swarm: cannot read corpus {path}: {e}");
                return ExitCode::from(2);
            }
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.parse::<u64>() {
                Ok(seed) => cases.push((format!("corpus seed {seed}"), SwarmCase::from_seed(seed))),
                Err(_) => match line.parse::<SwarmCase>() {
                    Ok(case) => cases.push((format!("corpus case ({line})"), case)),
                    Err(e) => {
                        eprintln!("reflex-swarm: corpus line is neither seed nor case: {e}");
                        return ExitCode::from(2);
                    }
                },
            }
        }
    }

    let total = cases.len();
    let verbose = total <= 2;
    let mut failures = 0usize;
    let mut checked: BTreeMap<OracleFamily, usize> = BTreeMap::new();
    for (i, (label, case)) in cases.iter().enumerate() {
        let outcome = run_case(case, &cfg);
        for (family, status) in &outcome.families {
            if *status == FamilyStatus::Checked {
                *checked.entry(*family).or_default() += 1;
            }
        }
        if verbose {
            println!("{label}: {}", case);
            for (family, status) in &outcome.families {
                match status {
                    FamilyStatus::Checked => println!("  {family}: checked"),
                    FamilyStatus::Vacuous(why) => println!("  {family}: vacuous ({why})"),
                }
            }
            for note in &outcome.notes {
                println!("  note: {note}");
            }
            println!("  completed IOs: {}", outcome.completed_ios);
        } else if (i + 1) % 25 == 0 || i + 1 == total {
            println!("[{}/{total}] {failures} failure(s) so far", i + 1);
        }
        if outcome.violations.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!("FAIL {label}");
        for v in &outcome.violations {
            eprintln!("  {v}");
        }
        let family = outcome.violations[0].family;
        let shrunk = shrink(case, family, &cfg, SHRINK_BUDGET);
        eprintln!("  shrunk ({} re-runs) to: {}", shrunk.runs, shrunk.case);
        eprintln!(
            "  repro: cargo run -p reflex-swarm --release -- --repro '{}'",
            shrunk.case
        );
        if label.starts_with("seed") {
            eprintln!(
                "  original: cargo run -p reflex-swarm --release -- --seed {}",
                case.seed
            );
        }
    }

    println!("\n{total} case(s), {failures} failure(s)");
    println!("family coverage (checked / total):");
    let mut missing = Vec::new();
    for family in OracleFamily::ALL {
        let n = checked.get(&family).copied().unwrap_or(0);
        println!("  {family}: {n}/{total}");
        if n == 0 {
            missing.push(family);
        }
    }
    if args.require_all_families && !missing.is_empty() {
        eprintln!(
            "reflex-swarm: families never exercised in this sweep: {}",
            missing
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(1);
    }
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
