//! reflex-swarm: deterministic adversarial testing of the whole stack,
//! with invariant oracles as the spec.
//!
//! Two arms share this crate:
//!
//! * **Structure-aware fuzzing** ([`harness`]) — byte-driven bodies
//!   over the decode/accounting edges (wire headers, pool cookies,
//!   lease ledgers, QoS scheduling, fault-plan parsing). The `fuzz/`
//!   workspace member wraps them in `fuzz_target!` binaries; the
//!   `fuzz_mirrors` proptest suite runs the same bodies under plain
//!   `cargo test`.
//! * **Swarm running** ([`gen`], [`runner`], [`shrink`]) — one u64 seed
//!   derives one random-but-valid testbed configuration, which executes
//!   under the five oracle families of [`oracle`]. A failing seed
//!   shrinks to a minimal case with a one-line repro; past failures
//!   live in `tests/corpus/seeds.txt` as a permanent regression suite.
//!
//! Everything is deterministic: same seed, same case, same verdict.

pub mod gen;
pub mod harness;
pub mod oracle;
pub mod rng;
pub mod runner;
pub mod shrink;

pub use gen::{SwarmCase, TenantSpec, Topology};
pub use oracle::{FamilyStatus, OracleFamily, Violation};
pub use runner::{run_case, run_seed, CaseOutcome, RunConfig};
pub use shrink::{shrink, Shrunk};
