//! Greedy case minimization: when a seed fails, reduce it to the
//! smallest case that still trips the *same* oracle family.
//!
//! Deterministic: candidates are derived in a fixed order with no
//! randomness, so shrinking the same failure always lands on the same
//! minimal case. Re-runs are bounded; the shrinker returns the best
//! case found when the budget runs out. The result is generally not
//! derivable from any seed, so the repro is the case's one-line string
//! (`--repro '<case>'`), not a seed.

use crate::gen::{SwarmCase, Topology};
use crate::oracle::OracleFamily;
use crate::runner::{run_case, RunConfig};

/// Outcome of a shrink campaign.
#[derive(Debug)]
pub struct Shrunk {
    /// Smallest case still failing the family.
    pub case: SwarmCase,
    /// Re-runs spent.
    pub runs: usize,
}

/// Minimizes `original` (which fails `family`) under a re-run budget.
pub fn shrink(
    original: &SwarmCase,
    family: OracleFamily,
    cfg: &RunConfig,
    max_runs: usize,
) -> Shrunk {
    let mut best = original.clone();
    let mut runs = 0;
    'outer: loop {
        for cand in candidates(&best) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            let outcome = run_case(&cand, cfg);
            if outcome.violations.iter().any(|v| v.family == family) {
                best = cand;
                continue 'outer; // restart from the biggest cuts
            }
        }
        break; // no candidate still fails: fixed point
    }
    Shrunk { case: best, runs }
}

/// Reduction candidates, biggest cut first. Every candidate preserves
/// the generator's validity rules (≥1 tenant, fault targets in range,
/// replicated tenants keep their SLO).
fn candidates(case: &SwarmCase) -> Vec<SwarmCase> {
    let mut out = Vec::new();

    // Drop the whole fault schedule, then individual events. Events are
    // rebuilt through `with_event` so ids stay sequential — the repro
    // line's parse assigns ids in order, and an id keys the event's RNG
    // stream.
    if !case.faults.events.is_empty() {
        let mut c = case.clone();
        c.faults.events.clear();
        out.push(c);
        if case.faults.events.len() > 1 {
            for skip in 0..case.faults.events.len() {
                let mut plan = reflex_faults::FaultPlan::seeded(case.faults.seed);
                for (j, e) in case.faults.events.iter().enumerate() {
                    if j != skip {
                        plan = plan.with_event(e.at, e.kind);
                    }
                }
                let mut c = case.clone();
                c.faults = plan;
                out.push(c);
            }
        }
    }

    // Drop tenants (keep at least one).
    if case.tenants.len() > 1 {
        for i in (0..case.tenants.len()).rev() {
            let mut c = case.clone();
            c.tenants.remove(i);
            out.push(c);
        }
    }

    // Collapse the topology.
    match case.topology {
        Topology::Core {
            server_threads,
            clients,
            shards,
            split,
        } => {
            if split {
                let mut c = case.clone();
                c.topology = Topology::Core {
                    server_threads,
                    clients,
                    shards,
                    split: false,
                };
                out.push(c);
            }
            if shards > 1 {
                let mut c = case.clone();
                c.topology = Topology::Core {
                    server_threads,
                    clients,
                    shards: 1,
                    split,
                };
                out.push(c);
            }
            // Fewer client machines, when no tenant or fault targets the
            // ones removed.
            if clients > 1 {
                let targets_last = case.tenants.iter().any(|t| t.client_machine >= clients - 1)
                    || case.faults.events.iter().any(|e| {
                        matches!(e.kind,
                            reflex_faults::FaultKind::LinkFlap { client, .. } if client >= clients - 1)
                    });
                if !targets_last {
                    let mut c = case.clone();
                    c.topology = Topology::Core {
                        server_threads,
                        clients: clients - 1,
                        shards,
                        split,
                    };
                    out.push(c);
                }
            }
        }
        Topology::Replicated {
            sites,
            replication,
            shards,
        } => {
            if shards > 1 {
                let mut c = case.clone();
                c.topology = Topology::Replicated {
                    sites,
                    replication,
                    shards: 1,
                };
                out.push(c);
            }
        }
    }

    // Shorter windows.
    if case.measure_ms >= 20 {
        let mut c = case.clone();
        c.measure_ms /= 2;
        out.push(c);
    }

    // Simplify tenants field by field.
    for (i, t) in case.tenants.iter().enumerate() {
        let mut push = |f: fn(&mut crate::gen::TenantSpec)| {
            let mut c = case.clone();
            f(&mut c.tenants[i]);
            if c != *case {
                out.push(c);
            }
        };
        if t.zipf_permille != 0 {
            push(|t| t.zipf_permille = 0);
        }
        if t.conns > 1 {
            push(|t| t.conns = 1);
        }
        if t.client_threads > 1 {
            push(|t| t.client_threads = 1);
        }
        if t.quorum_read {
            push(|t| t.quorum_read = false);
        }
        // Core tenants can lose their SLO; replicated ones need it.
        if t.lc.is_some() && matches!(case.topology, Topology::Core { .. }) {
            push(|t| t.lc = None);
        }
        // Retry interacts with timeout storms and backoff scheduling —
        // dropping it isolates whether a failure needs the retry path at
        // all (replicated workloads always retry, so core only).
        if t.retry && matches!(case.topology, Topology::Core { .. }) {
            push(|t| t.retry = false);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_preserve_validity() {
        for seed in 0..64 {
            let case = SwarmCase::from_seed(seed);
            for cand in candidates(&case) {
                assert!(!cand.tenants.is_empty(), "seed {seed}");
                // Every candidate must still round-trip its repro line.
                let line = cand.to_string();
                let back: SwarmCase = line.parse().unwrap_or_else(|e| panic!("{line}: {e}"));
                assert_eq!(back, cand);
                if let Topology::Core { clients, .. } = cand.topology {
                    for t in &cand.tenants {
                        assert!(t.client_machine < clients, "seed {seed}");
                    }
                }
            }
        }
    }
}
