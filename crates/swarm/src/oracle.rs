//! The five invariant-oracle families — the spec the swarm holds every
//! run to.
//!
//! A family is *checked* when the case's configuration gives it
//! something to bite on, and *vacuous* (with a stated reason) when the
//! configuration makes it undefined — e.g. lease conservation only
//! exists once a split-dataplane ledger exists. The runner reports the
//! status of all five for every case, so a CI sweep can prove each
//! family actually fired within its seed budget.

use std::fmt;

use reflex_telemetry::TelemetrySnapshot;

/// The five families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OracleFamily {
    /// Per-tenant `submitted == completed + failed + retried` and zero
    /// open spans, after generators stop and queues drain.
    IoConservation,
    /// Split-dataplane ledger: `gives == residue + Σ leases + taken +
    /// discarded` (and, unified, token spend within the device budget).
    LeaseConservation,
    /// Replication: membership epochs only ever increase, member sets
    /// stay well-formed, failovers and epoch bumps correspond.
    QuorumEpoch,
    /// Byte-identical reports between the case's sharded/split execution
    /// and the mono execution of the same scenario (or an exact re-run,
    /// for fault campaigns that pin execution to one shard).
    ShardIdentity,
    /// No hot-path allocations: steady-state allocs per completed IO
    /// under budget, measured with the counting allocator.
    AllocBudget,
}

impl OracleFamily {
    /// All five, in reporting order.
    pub const ALL: [OracleFamily; 5] = [
        OracleFamily::IoConservation,
        OracleFamily::LeaseConservation,
        OracleFamily::QuorumEpoch,
        OracleFamily::ShardIdentity,
        OracleFamily::AllocBudget,
    ];

    /// Short stable name (CI artifact keys).
    pub fn name(self) -> &'static str {
        match self {
            OracleFamily::IoConservation => "io-conservation",
            OracleFamily::LeaseConservation => "lease-conservation",
            OracleFamily::QuorumEpoch => "quorum-epoch",
            OracleFamily::ShardIdentity => "shard-identity",
            OracleFamily::AllocBudget => "alloc-budget",
        }
    }
}

impl fmt::Display for OracleFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which family caught it.
    pub family: OracleFamily,
    /// Human-readable description with the offending numbers.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.family, self.detail)
    }
}

/// Per-case status of one family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyStatus {
    /// The family's invariants were asserted on this case.
    Checked,
    /// The case's configuration gives the family nothing to assert.
    Vacuous(&'static str),
}

/// Checks the IO-conservation family on a drained telemetry snapshot.
pub fn check_io_conservation(snapshot: &TelemetrySnapshot, out: &mut Vec<Violation>) {
    if snapshot.ios.is_empty() {
        out.push(Violation {
            family: OracleFamily::IoConservation,
            detail: "no IO counters recorded — the case carried no traffic".into(),
        });
        return;
    }
    let mut any_traffic = false;
    for (tenant, io) in &snapshot.ios {
        if io.submitted != io.completed + io.failed + io.retried {
            out.push(Violation {
                family: OracleFamily::IoConservation,
                detail: format!(
                    "tenant {tenant:?} leaked IOs after drain: submitted {} != completed {} \
                     + failed {} + retried {}",
                    io.submitted, io.completed, io.failed, io.retried
                ),
            });
        }
        if io.open_spans != 0 {
            out.push(Violation {
                family: OracleFamily::IoConservation,
                detail: format!(
                    "tenant {tenant:?} left {} spans open after drain",
                    io.open_spans
                ),
            });
        }
        any_traffic |= io.submitted > 0;
    }
    if !any_traffic {
        out.push(Violation {
            family: OracleFamily::IoConservation,
            detail: "every tenant recorded zero submissions".into(),
        });
    }
}

/// Checks the ledger half of the lease-conservation family.
pub fn check_lease_ledger(gives: i64, accounted: i64, out: &mut Vec<Violation>) {
    if gives != accounted {
        out.push(Violation {
            family: OracleFamily::LeaseConservation,
            detail: format!(
                "lease ledger broke conservation: gives {gives} != residue + Σ leases + \
                 taken + discarded = {accounted} (drift {})",
                gives - accounted
            ),
        });
    }
}

/// Checks sampled replication epochs for monotonicity and fault
/// correspondence.
pub fn check_epochs(
    samples: &[Vec<u32>],
    recoveries: usize,
    faulty: bool,
    out: &mut Vec<Violation>,
) {
    for w_samples in transpose(samples) {
        for pair in w_samples.windows(2) {
            if pair[1] < pair[0] {
                out.push(Violation {
                    family: OracleFamily::QuorumEpoch,
                    detail: format!("epoch went backwards: {} -> {}", pair[0], pair[1]),
                });
            }
        }
        if let (Some(first), Some(last)) = (w_samples.first(), w_samples.last()) {
            if !faulty && last != first {
                out.push(Violation {
                    family: OracleFamily::QuorumEpoch,
                    detail: format!("epoch moved {first} -> {last} with no fault scheduled"),
                });
            }
            if last > first && recoveries == 0 {
                out.push(Violation {
                    family: OracleFamily::QuorumEpoch,
                    detail: format!("epoch bumped {first} -> {last} but no recovery was recorded"),
                });
            }
        }
    }
}

fn transpose(samples: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let width = samples.first().map_or(0, Vec::len);
    (0..width)
        .map(|w| samples.iter().map(|s| s[w]).collect())
        .collect()
}

/// Checks a replicated workload's final membership shape.
pub fn check_membership(
    members: &[usize],
    primary_slot: usize,
    replication: usize,
    faulty: bool,
    out: &mut Vec<Violation>,
) {
    let mut seen = std::collections::BTreeSet::new();
    for site in members {
        if !seen.insert(*site) {
            out.push(Violation {
                family: OracleFamily::QuorumEpoch,
                detail: format!("member set has duplicate site {site}: {members:?}"),
            });
        }
    }
    if primary_slot >= members.len() {
        out.push(Violation {
            family: OracleFamily::QuorumEpoch,
            detail: format!(
                "primary slot {primary_slot} outside member set of {}",
                members.len()
            ),
        });
    }
    // A healthy run keeps R members; a single death may degrade to R-1
    // until (or unless) a spare finishes re-sync.
    let floor = if faulty {
        replication.saturating_sub(1)
    } else {
        replication
    };
    if members.len() < floor {
        out.push(Violation {
            family: OracleFamily::QuorumEpoch,
            detail: format!(
                "member set shrank to {} (< {floor}) with replication {replication}",
                members.len()
            ),
        });
    }
}

/// Checks the shard/split identity family.
pub fn check_identity(kind: &str, a: &str, b: &str, out: &mut Vec<Violation>) {
    if a != b {
        // Find the first divergent region so the report is readable.
        let split = a
            .bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len()));
        let lo = split.saturating_sub(40);
        let window = |s: &str| s[lo..(split + 80).min(s.len())].to_string();
        out.push(Violation {
            family: OracleFamily::ShardIdentity,
            detail: format!(
                "{kind} runs diverged at byte {split}:\n  a: …{}…\n  b: …{}…",
                window(a),
                window(b)
            ),
        });
    }
}

/// Checks the allocation budget family.
pub fn check_alloc(allocs: u64, ios: u64, budget_per_io: f64, out: &mut Vec<Violation>) {
    if ios == 0 {
        out.push(Violation {
            family: OracleFamily::AllocBudget,
            detail: "alloc pass completed no IOs".into(),
        });
        return;
    }
    let rate = allocs as f64 / ios as f64;
    if rate >= budget_per_io {
        out.push(Violation {
            family: OracleFamily::AllocBudget,
            detail: format!(
                "hot path allocated: {allocs} allocations over {ios} IOs \
                 ({rate:.4}/IO, budget {budget_per_io}/IO)"
            ),
        });
    }
}
