//! Byte-driven fuzz bodies, shared by two drivers.
//!
//! Each `check_*` function interprets an arbitrary byte buffer as a
//! scenario for one decode/accounting edge and panics iff an invariant
//! breaks. The `fuzz/` workspace member wraps them in `fuzz_target!`
//! binaries (corpus replay / random loop — or libFuzzer proper when a
//! nightly toolchain is available); `tests/fuzz_mirrors.rs` runs the
//! same bodies as proptests under plain `cargo test`, so CI exercises
//! them with no extra toolchain.

use reflex_flash::IoType;
use reflex_net::{ReflexHeader, WireError, HEADER_SIZE};
use reflex_qos::{
    CostModel, CostedRequest, GlobalBucket, LeaseLedger, LoadMix, QosScheduler, SchedulerParams,
    SloSpec, TenantId, Tokens,
};
use reflex_sim::{PoolKey, SimDuration, SimTime, SlabPool};

use reflex_faults::FaultPlan;

/// Wire decode/encode: decoding arbitrary bytes never panics, anything
/// decoded re-encodes to the same prefix, and errors classify the
/// offending byte.
pub fn check_wire_roundtrip(data: &[u8]) {
    match ReflexHeader::decode(data) {
        Ok(h) => {
            let enc = h.encode();
            assert_eq!(enc.len(), HEADER_SIZE);
            assert_eq!(
                &enc[..],
                &data[..HEADER_SIZE],
                "decoded header re-encodes differently"
            );
            assert_eq!(enc[..], h.encode_array()[..], "encode vs encode_array");
            assert_eq!(
                ReflexHeader::decode(&enc).expect("re-decode"),
                h,
                "decode∘encode not identity"
            );
        }
        Err(WireError::Truncated) => assert!(data.len() < HEADER_SIZE),
        Err(WireError::BadMagic(b)) => assert_eq!(b, data[0]),
        Err(WireError::BadOpcode(b)) => assert_eq!(b, data[1]),
    }
}

/// PoolKey/cookie packing: `as_u64`/`from_u64` is a bijection on every
/// raw value, and a slab driven through arbitrary insert/take/stale-take
/// sequences agrees with a mirror map (no aliasing, no resurrection).
pub fn check_pool_cookie(data: &[u8]) {
    for chunk in data.chunks_exact(8) {
        let raw = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        let key = PoolKey::from_u64(raw);
        assert_eq!(key.as_u64(), raw, "PoolKey packing not bijective");
    }

    let mut pool: SlabPool<u64> = SlabPool::new();
    let mut live: Vec<(PoolKey, u64)> = Vec::new();
    let mut dead: Vec<PoolKey> = Vec::new();
    let mut next_val = 0u64;
    for op in data {
        match op % 4 {
            0 | 1 => {
                let key = pool.insert(next_val);
                // The key must travel through the wire-cookie packing
                // unchanged — this is what the dataplane does.
                let key = PoolKey::from_u64(key.as_u64());
                live.push((key, next_val));
                next_val += 1;
            }
            2 => {
                if !live.is_empty() {
                    let idx = (*op as usize) % live.len();
                    let (key, val) = live.swap_remove(idx);
                    assert_eq!(pool.take(key), Some(val), "live key lost its value");
                    dead.push(key);
                }
            }
            _ => {
                if !dead.is_empty() {
                    let key = dead[(*op as usize) % dead.len()];
                    assert_eq!(pool.take(key), None, "stale key resurrected");
                }
            }
        }
    }
    assert_eq!(pool.len(), live.len());
    for (key, val) in &live {
        assert_eq!(pool.get(*key), Some(val), "live key unreadable");
    }
}

/// LeaseLedger accounting under arbitrary op sequences, replicated: two
/// ledgers (one per dataplane thread, exchanging entries like split
/// shards do) must converge to identical state at every synchronized
/// boundary, and both must satisfy the conservation identity
/// `gives == residue + Σ leases + taken + discarded`.
pub fn check_lease_ops(data: &[u8]) {
    const WINDOW_US: u64 = 100;
    let window = SimDuration::from_micros(WINDOW_US);
    let mut a = LeaseLedger::new(2, window);
    let mut b = LeaseLedger::new(2, window);
    let mut now = SimTime::ZERO;

    let exchange_and_observe = |a: &mut LeaseLedger, b: &mut LeaseLedger, at: SimTime| {
        let from_a = a.take_outbound();
        let from_b = b.take_outbound();
        a.accept(&from_b);
        b.accept(&from_a);
        a.observe(at);
        b.observe(at);
    };

    for chunk in data.chunks(3) {
        let sel = chunk[0];
        let amount = i64::from(*chunk.get(1).unwrap_or(&1)) * 10 + 1;
        let gap = u64::from(*chunk.get(2).unwrap_or(&0)) % (2 * WINDOW_US) + 1;
        now += SimDuration::from_micros(gap);
        // Thread 0 lives on replica A, thread 1 on replica B — each op is
        // staged on its owner, exactly like split-dataplane shards.
        let (owner, thread) = if sel & 1 == 0 {
            (&mut a, 0u32)
        } else {
            (&mut b, 1u32)
        };
        match (sel >> 1) % 4 {
            0 => owner.give(now, thread, Tokens::from_millitokens(amount)),
            1 => {
                let _ = owner.take(now, thread, Tokens::from_millitokens(amount));
            }
            2 => {
                let _ = owner.mark_round(now, thread);
            }
            _ => exchange_and_observe(&mut a, &mut b, now),
        }
    }
    // Final synchronized boundary: everything staged applies on both.
    now += SimDuration::from_micros(2 * WINDOW_US);
    exchange_and_observe(&mut a, &mut b, now);

    for t in 0..2 {
        assert_eq!(a.lease_of(t), b.lease_of(t), "replicas diverged: lease {t}");
    }
    assert_eq!(a.residue(), b.residue(), "replicas diverged: residue");
    for (name, ledger) in [("A", &a), ("B", &b)] {
        assert_eq!(
            ledger.gives_cum(),
            ledger.accounted(),
            "conservation broken on replica {name}: gives {} vs accounted {}",
            ledger.gives_cum(),
            ledger.accounted()
        );
    }
    assert_eq!(a.gives_cum(), b.gives_cum());
    assert_eq!(a.taken_cum(), b.taken_cum());
    assert_eq!(a.discarded_cum(), b.discarded_cum());
}

/// QoS scheduler under an arbitrary enqueue/schedule/renegotiate
/// sequence: an LC tenant's spend never exceeds its generation plus the
/// deficit allowance, across renegotiations.
pub fn check_sched_ops(data: &[u8]) {
    let bucket = std::sync::Arc::new(GlobalBucket::new(2));
    let mut sched: QosScheduler<u64> = QosScheduler::new(
        0,
        bucket,
        CostModel::for_device_a(),
        SchedulerParams::default(),
        SimTime::ZERO,
    );
    let id = TenantId(1);
    let base_slo = SloSpec::new(50_000, 80, SimDuration::from_millis(1));
    sched.register_lc(id, base_slo, 4096).expect("fresh tenant");

    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    // Integrate generation across renegotiations: rate(t) · dt, in
    // millitokens, accumulated each time the rate changes or time moves.
    let mut rate = sched
        .lc_rate(id)
        .expect("registered")
        .as_millitokens_per_sec() as i128;
    let mut generated: i128 = 0;
    let mut last = SimTime::ZERO;
    let mut max_rate = rate;
    for chunk in data.chunks(2) {
        let sel = chunk[0];
        let arg = u64::from(*chunk.get(1).unwrap_or(&1)) + 1;
        match sel % 4 {
            0 | 1 => {
                let op = if seq.is_multiple_of(5) {
                    IoType::Write
                } else {
                    IoType::Read
                };
                sched
                    .enqueue(
                        id,
                        CostedRequest {
                            op,
                            len: 4096,
                            payload: seq,
                        },
                    )
                    .expect("registered");
                seq += 1;
            }
            2 => {
                let next = now + SimDuration::from_micros(arg * 10);
                generated += rate * i128::from((next - last).as_nanos()) / 1_000_000_000;
                last = next;
                now = next;
                let _ = sched.schedule(now, LoadMix::Mixed);
            }
            _ => {
                let iops = 10_000 + (arg % 10) * 10_000;
                let slo = SloSpec::new(iops, 80, SimDuration::from_millis(1));
                if sched.renegotiate_lc(id, slo, 4096).is_ok() {
                    generated += rate * i128::from((now - last).as_nanos()) / 1_000_000_000;
                    last = now;
                    rate = sched
                        .lc_rate(id)
                        .expect("registered")
                        .as_millitokens_per_sec() as i128;
                    max_rate = max_rate.max(rate);
                }
            }
        }
    }
    generated += rate * i128::from((now - last).as_nanos()) / 1_000_000_000;
    let stats = sched.stats_for(id).expect("registered");
    // Deficit allowance (50 tokens) + one request overshoot (a 10-token
    // write) + one rate-transition window of slack.
    let allowance = 50_000i128 + 10_000 + max_rate / 1_000;
    assert!(
        i128::from(stats.spent_millitokens) <= generated + allowance + 1,
        "LC spend {} exceeds generation {generated} + allowance {allowance}",
        stats.spent_millitokens
    );
}

/// Fault-schedule parsing: arbitrary text never panics the parser, and
/// anything it accepts round-trips exactly through `Display`.
pub fn check_fault_plan(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    if let Ok(plan) = FaultPlan::parse(&text) {
        let canonical = plan.to_string();
        let reparsed = FaultPlan::parse(&canonical)
            .unwrap_or_else(|e| panic!("canonical form rejected: {e}\n{canonical}"));
        assert_eq!(reparsed, plan, "parse∘display not identity:\n{canonical}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: every body accepts empty and small inputs.
    #[test]
    fn bodies_accept_degenerate_inputs() {
        for data in [&[][..], &[0][..], &[0xff; 64][..]] {
            check_wire_roundtrip(data);
            check_pool_cookie(data);
            check_lease_ops(data);
            check_sched_ops(data);
            check_fault_plan(data);
        }
    }

    #[test]
    fn valid_header_exercises_ok_arm() {
        let hdr = ReflexHeader {
            opcode: reflex_net::Opcode::Get,
            tenant: 7,
            cookie: 0xdead_beef,
            addr: 4096,
            len: 512,
        };
        check_wire_roundtrip(&hdr.encode_array());
    }

    #[test]
    fn valid_plan_exercises_ok_arm() {
        let text = b"seed=3\n@1ms loss rate=0.5 for=2ms\n";
        check_fault_plan(text);
    }
}
