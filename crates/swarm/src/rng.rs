//! The swarm's own tiny deterministic RNG.
//!
//! Everything the swarm generates — case shapes, fuzz buffers, shrink
//! candidates — derives from a [`SwarmRng`] seeded by the case's u64
//! seed, so a seed is a complete description of a run. splitmix64, the
//! same finalizer the fault plans use for stream decorrelation.

/// splitmix64 sequence generator.
#[derive(Debug, Clone)]
pub struct SwarmRng(u64);

impl SwarmRng {
    /// A generator whose whole future output is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SwarmRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in the inclusive range.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}
