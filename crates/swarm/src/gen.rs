//! Seed → case derivation: one u64 describes one complete adversarial
//! scenario.
//!
//! [`SwarmCase::from_seed`] is a pure function of the seed (every draw
//! comes from one [`SwarmRng`] stream, consumed in a fixed order), so
//! `--seed N` is a total repro of a swarm run. Cases are **valid by
//! construction**: the generator only emits combinations the stack
//! defines semantics for — fault campaigns force the unified
//! single-shard dataplane (fault hooks and splitting are mutually
//! exclusive by design, see `SplitFallback`), fault targets are bounded
//! by the generated topology, and every tenant of a faulty case carries
//! a retry policy so lost requests terminate instead of leaking open
//! spans. Latency-critical reservations are capped well under device
//! capacity; tenants the admission controller still rejects are dropped
//! (rejection is legitimate behavior, not a generator bug) and the
//! first tenant is always best-effort so every case carries traffic.
//!
//! A case also round-trips through a one-line string (`Display` /
//! `FromStr`) so shrunk cases — which are generally *not* derivable
//! from any seed — still get a one-line repro: `--repro '<case>'`.

use std::fmt;
use std::str::FromStr;

use reflex_faults::{FaultKind, FaultPlan};
use reflex_sim::{SimDuration, SimTime};

use crate::rng::SwarmRng;

/// Which testbed a case runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Single-server `Testbed` (reflex-core).
    Core {
        /// Server dataplane threads (1..=2).
        server_threads: usize,
        /// Client machines (1..=3).
        clients: usize,
        /// Requested shard count (1..=4; clamping is legal and recorded).
        shards: usize,
        /// Split-dataplane execution (healthy cases only).
        split: bool,
    },
    /// Replicated `ReplTestbed` (reflex-replication).
    Replicated {
        /// Server sites (3..=4).
        sites: usize,
        /// Replication factor (2..=3, ≤ sites).
        replication: usize,
        /// Requested shard count (1..=4).
        shards: usize,
    },
}

/// One tenant/workload of a case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Latency-critical SLO `(iops, read_pct, p95_us)`; `None` = best
    /// effort. On replicated topologies this is the (mandatory) SLO.
    pub lc: Option<(u64, u8, u64)>,
    /// Open-loop (true) or closed-loop (false) load.
    pub open_loop: bool,
    /// Offered IOPS for open-loop tenants.
    pub rate_iops: u64,
    /// Queue depth for closed-loop tenants.
    pub depth: u32,
    /// Read percentage of the generated traffic.
    pub read_pct: u8,
    /// Connections.
    pub conns: u32,
    /// Client threads.
    pub client_threads: u32,
    /// Index of the client machine issuing this tenant's load.
    pub client_machine: usize,
    /// IO size in bytes.
    pub io_size: u32,
    /// Whether the client retries failed/timed-out requests.
    pub retry: bool,
    /// Quorum reads (replicated topologies; ignored on core).
    pub quorum_read: bool,
    /// Zipfian hot-spot theta in permille; 0 = uniform addresses.
    pub zipf_permille: u32,
}

/// One complete, valid adversarial scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmCase {
    /// The seed this case was derived from (kept for reporting; shrunk
    /// cases retain their ancestor's seed).
    pub seed: u64,
    /// Testbed shape.
    pub topology: Topology,
    /// Tenants, in registration order. Never empty.
    pub tenants: Vec<TenantSpec>,
    /// Fault schedule (empty = healthy run).
    pub faults: FaultPlan,
    /// Warmup window, milliseconds.
    pub warmup_ms: u64,
    /// Measured window, milliseconds.
    pub measure_ms: u64,
}

/// Total latency-critical reservation cap (IOPS): leaves the admission
/// controller headroom on the calibrated device so most generated LC
/// tenants admit, while still probing the rejection boundary.
const LC_CAP_IOPS: u64 = 120_000;

impl SwarmCase {
    /// Derives the full case from one seed. Pure: same seed, same case.
    pub fn from_seed(seed: u64) -> SwarmCase {
        let mut rng = SwarmRng::new(seed);
        let warmup_ms = rng.range(10, 20);
        let measure_ms = rng.range(40, 80);
        if rng.chance(30) {
            Self::gen_replicated(seed, &mut rng, warmup_ms, measure_ms)
        } else {
            Self::gen_core(seed, &mut rng, warmup_ms, measure_ms)
        }
    }

    fn gen_core(seed: u64, rng: &mut SwarmRng, warmup_ms: u64, measure_ms: u64) -> SwarmCase {
        let server_threads = rng.range(1, 2) as usize;
        let clients = rng.range(1, 3) as usize;
        let faulty = rng.chance(40);
        // Fault hooks and split/sharded execution are mutually exclusive
        // by design; generate only combinations with defined semantics.
        let (shards, split) = if faulty {
            (1, false)
        } else {
            let shards = if rng.chance(50) {
                1
            } else {
                rng.range(2, 4) as usize
            };
            (shards, rng.chance(40))
        };

        let mut tenants = Vec::new();
        // Tenant 0 is always best-effort: admission can never reject it,
        // so every case carries traffic.
        tenants.push(TenantSpec {
            lc: None,
            open_loop: true,
            rate_iops: rng.range(10_000, 30_000),
            depth: 0,
            read_pct: rng.range(50, 100) as u8,
            conns: rng.range(1, 8) as u32,
            client_threads: rng.range(1, 4) as u32,
            client_machine: rng.below(clients as u64) as usize,
            io_size: rng.pick(&[512, 1024, 4096]),
            retry: faulty,
            quorum_read: false,
            zipf_permille: if rng.chance(20) {
                rng.range(900, 990) as u32
            } else {
                0
            },
        });
        let extra = rng.below(4);
        let mut lc_budget = LC_CAP_IOPS;
        for _ in 0..extra {
            let want_lc = rng.chance(40);
            let lc = if want_lc && lc_budget >= 10_000 {
                let iops = rng.range(10_000, lc_budget.min(50_000));
                lc_budget -= iops;
                Some((
                    iops,
                    rng.range(50, 100) as u8,
                    rng.pick(&[500u64, 1_000, 2_000]),
                ))
            } else {
                None
            };
            let open_loop = rng.chance(70);
            let rate_iops = match lc {
                // Offer slightly under the reservation so LC tenants run
                // inside their SLO.
                Some((iops, _, _)) => iops * 9 / 10,
                None => rng.range(5_000, 40_000),
            };
            tenants.push(TenantSpec {
                lc,
                open_loop,
                rate_iops,
                depth: rng.range(1, 8) as u32,
                read_pct: match lc {
                    Some((_, pct, _)) => pct,
                    None => rng.range(30, 100) as u8,
                },
                conns: rng.range(1, 8) as u32,
                client_threads: rng.range(1, 4) as u32,
                client_machine: rng.below(clients as u64) as usize,
                io_size: rng.pick(&[512, 1024, 4096]),
                retry: faulty || rng.chance(30),
                quorum_read: false,
                zipf_permille: if rng.chance(20) {
                    rng.range(900, 990) as u32
                } else {
                    0
                },
            });
        }

        let mut faults = FaultPlan::seeded(rng.next_u64());
        if faulty {
            let n_events = rng.range(1, 3);
            for _ in 0..n_events {
                let at = SimTime::ZERO
                    + SimDuration::from_millis(warmup_ms + rng.below(measure_ms * 3 / 4).max(1));
                let rate = rng.range(1, 20) as f64 / 100.0;
                let dur = SimDuration::from_millis(rng.range(1, 10));
                let kind = match rng.below(7) {
                    0 => FaultKind::TransientDeviceErrors {
                        rate,
                        duration: dur,
                    },
                    1 => FaultKind::GcStorm {
                        extra: SimDuration::from_micros(rng.range(50, 500)),
                        duration: dur,
                    },
                    2 => FaultKind::PacketLoss {
                        rate,
                        duration: dur,
                    },
                    3 => FaultKind::PacketDup {
                        rate,
                        duration: dur,
                    },
                    4 => FaultKind::LatencyStorm {
                        extra: SimDuration::from_micros(rng.range(50, 300)),
                        duration: dur,
                    },
                    5 => FaultKind::ThreadStall {
                        thread: rng.below(server_threads as u64) as usize,
                        stall: SimDuration::from_millis(rng.range(1, 3)),
                    },
                    _ => FaultKind::LinkFlap {
                        client: rng.below(clients as u64) as usize,
                        down_for: SimDuration::from_millis(rng.range(1, 5)),
                    },
                };
                faults = faults.with_event(at, kind);
            }
        }

        SwarmCase {
            seed,
            topology: Topology::Core {
                server_threads,
                clients,
                shards,
                split,
            },
            tenants,
            faults,
            warmup_ms,
            measure_ms,
        }
    }

    fn gen_replicated(seed: u64, rng: &mut SwarmRng, warmup_ms: u64, measure_ms: u64) -> SwarmCase {
        let sites = rng.range(3, 4) as usize;
        let replication = rng.range(2, 3.min(sites as u64)) as usize;
        let faulty = rng.chance(60);
        // Fault installation pins execution to one shard, same as core.
        let shards = if faulty || rng.chance(50) {
            1
        } else {
            rng.range(2, 4) as usize
        };
        let n_tenants = rng.range(1, 2);
        let mut tenants = Vec::new();
        for _ in 0..n_tenants {
            let rate_iops = rng.range(8_000, 30_000);
            let read_pct = rng.range(50, 95) as u8;
            tenants.push(TenantSpec {
                // Headroom: reserve 30% above offered load so a promoted
                // quorum anchor can drain the failover backlog (see
                // DESIGN §11).
                lc: Some((rate_iops * 13 / 10, read_pct, 800)),
                open_loop: true,
                rate_iops,
                depth: 0,
                read_pct,
                conns: 0, // spec default
                client_threads: 0,
                client_machine: 0,
                io_size: 4096,
                retry: true,
                quorum_read: rng.chance(50),
                zipf_permille: 0,
            });
        }
        let mut faults = FaultPlan::seeded(rng.next_u64());
        if faulty {
            let at = SimTime::ZERO
                + SimDuration::from_millis(warmup_ms + rng.below(measure_ms / 2).max(1));
            faults = faults.with_event(
                at,
                FaultKind::ServerDeath {
                    server: rng.below(sites as u64) as usize,
                },
            );
        }
        SwarmCase {
            seed,
            topology: Topology::Replicated {
                sites,
                replication,
                shards,
            },
            tenants,
            faults,
            warmup_ms,
            measure_ms,
        }
    }

    /// True when the case schedules at least one fault.
    pub fn faulty(&self) -> bool {
        !self.faults.is_empty()
    }
}

// ---------------------------------------------------------------------
// One-line case form: `v1|key=value|…`, fields split on `|`, values may
// contain anything but `|`. The fault plan rides along with newlines
// folded to `;`.

impl fmt::Display for SwarmCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "v1|seed={}|warmup={}|measure={}",
            self.seed, self.warmup_ms, self.measure_ms
        )?;
        match self.topology {
            Topology::Core {
                server_threads,
                clients,
                shards,
                split,
            } => write!(
                f,
                "|topo=core:{server_threads}:{clients}:{shards}:{}",
                u8::from(split)
            )?,
            Topology::Replicated {
                sites,
                replication,
                shards,
            } => write!(f, "|topo=repl:{sites}:{replication}:{shards}")?,
        }
        for t in &self.tenants {
            let class = match t.lc {
                Some((iops, pct, p95)) => format!("lc,{iops},{pct},{p95}"),
                None => "be".to_string(),
            };
            write!(
                f,
                "|tenant={class};{};{};{};{};{};{};{};{};{};{};{}",
                u8::from(t.open_loop),
                t.rate_iops,
                t.depth,
                t.read_pct,
                t.conns,
                t.client_threads,
                t.client_machine,
                t.io_size,
                u8::from(t.retry),
                u8::from(t.quorum_read),
                t.zipf_permille,
            )?;
        }
        if !self.faults.is_empty() || self.faults.seed != 0 {
            write!(f, "|faults={}", self.faults.to_string().replace('\n', ";"))?;
        }
        Ok(())
    }
}

fn parse_num<T: FromStr>(what: &str, s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: `{s}`"))
}

impl FromStr for SwarmCase {
    type Err = String;

    fn from_str(s: &str) -> Result<SwarmCase, String> {
        let mut fields = s.split('|');
        if fields.next() != Some("v1") {
            return Err("case string must start with `v1|`".into());
        }
        let mut seed = None;
        let mut warmup_ms = None;
        let mut measure_ms = None;
        let mut topology = None;
        let mut tenants = Vec::new();
        let mut faults = FaultPlan::none();
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field `{field}` is not key=value"))?;
            match key {
                "seed" => seed = Some(parse_num("seed", value)?),
                "warmup" => warmup_ms = Some(parse_num("warmup", value)?),
                "measure" => measure_ms = Some(parse_num("measure", value)?),
                "topo" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    topology = Some(match parts.as_slice() {
                        ["core", t, c, sh, sp] => Topology::Core {
                            server_threads: parse_num("threads", t)?,
                            clients: parse_num("clients", c)?,
                            shards: parse_num("shards", sh)?,
                            split: *sp == "1",
                        },
                        ["repl", s, r, sh] => Topology::Replicated {
                            sites: parse_num("sites", s)?,
                            replication: parse_num("replication", r)?,
                            shards: parse_num("shards", sh)?,
                        },
                        _ => return Err(format!("bad topo `{value}`")),
                    });
                }
                "tenant" => {
                    let parts: Vec<&str> = value.split(';').collect();
                    if parts.len() != 12 {
                        return Err(format!("tenant needs 12 fields, got {}", parts.len()));
                    }
                    let lc = if parts[0] == "be" {
                        None
                    } else {
                        let c: Vec<&str> = parts[0].split(',').collect();
                        match c.as_slice() {
                            ["lc", iops, pct, p95] => Some((
                                parse_num("lc iops", iops)?,
                                parse_num("lc read_pct", pct)?,
                                parse_num("lc p95", p95)?,
                            )),
                            _ => return Err(format!("bad tenant class `{}`", parts[0])),
                        }
                    };
                    tenants.push(TenantSpec {
                        lc,
                        open_loop: parts[1] == "1",
                        rate_iops: parse_num("rate", parts[2])?,
                        depth: parse_num("depth", parts[3])?,
                        read_pct: parse_num("read_pct", parts[4])?,
                        conns: parse_num("conns", parts[5])?,
                        client_threads: parse_num("client_threads", parts[6])?,
                        client_machine: parse_num("client_machine", parts[7])?,
                        io_size: parse_num("io_size", parts[8])?,
                        retry: parts[9] == "1",
                        quorum_read: parts[10] == "1",
                        zipf_permille: parse_num("zipf", parts[11])?,
                    });
                }
                "faults" => {
                    faults = FaultPlan::parse(&value.replace(';', "\n"))
                        .map_err(|e| format!("fault plan: {e}"))?;
                }
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        if tenants.is_empty() {
            return Err("case has no tenants".into());
        }
        Ok(SwarmCase {
            seed: seed.ok_or("missing seed")?,
            topology: topology.ok_or("missing topo")?,
            tenants,
            faults,
            warmup_ms: warmup_ms.ok_or("missing warmup")?,
            measure_ms: measure_ms.ok_or("missing measure")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        for seed in 0..64 {
            assert_eq!(SwarmCase::from_seed(seed), SwarmCase::from_seed(seed));
        }
    }

    #[test]
    fn case_string_round_trips() {
        for seed in 0..256 {
            let case = SwarmCase::from_seed(seed);
            let line = case.to_string();
            let back: SwarmCase = line.parse().unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, case, "{line}");
        }
    }

    #[test]
    fn cases_are_valid_by_construction() {
        for seed in 0..512 {
            let case = SwarmCase::from_seed(seed);
            assert!(!case.tenants.is_empty());
            match case.topology {
                Topology::Core {
                    server_threads,
                    clients,
                    shards,
                    split,
                } => {
                    assert!((1..=2).contains(&server_threads));
                    assert!((1..=3).contains(&clients));
                    assert!((1..=4).contains(&shards));
                    if case.faulty() {
                        // Fault hooks force the unified single-shard path.
                        assert_eq!(shards, 1, "seed {seed}");
                        assert!(!split, "seed {seed}");
                        assert!(case.tenants.iter().all(|t| t.retry), "seed {seed}");
                    }
                    for e in &case.faults.events {
                        match e.kind {
                            FaultKind::ThreadStall { thread, .. } => {
                                assert!(thread < server_threads)
                            }
                            FaultKind::LinkFlap { client, .. } => assert!(client < clients),
                            FaultKind::ServerDeath { .. } | FaultKind::DeviceDeath => {
                                panic!("core cases never kill whole machines (seed {seed})")
                            }
                            _ => {}
                        }
                    }
                    for t in &case.tenants {
                        assert!(t.client_machine < clients);
                    }
                }
                Topology::Replicated {
                    sites,
                    replication,
                    shards,
                } => {
                    assert!(replication <= sites);
                    assert!(replication >= 2);
                    if case.faulty() {
                        // Fault installation is single-shard, as on core.
                        assert_eq!(shards, 1, "seed {seed}");
                    }
                    for e in &case.faults.events {
                        match e.kind {
                            FaultKind::ServerDeath { server } => assert!(server < sites),
                            other => panic!("unexpected replicated fault {other:?}"),
                        }
                    }
                }
            }
            let lc_total: u64 = case.tenants.iter().filter_map(|t| t.lc).map(|l| l.0).sum();
            if matches!(case.topology, Topology::Core { .. }) {
                assert!(lc_total <= LC_CAP_IOPS, "seed {seed}: LC total {lc_total}");
            }
        }
    }

    #[test]
    fn seeds_cover_every_regime() {
        let mut split = 0;
        let mut sharded = 0;
        let mut faulty = 0;
        let mut replicated = 0;
        for seed in 0..256 {
            let c = SwarmCase::from_seed(seed);
            if c.faulty() {
                faulty += 1;
            }
            match c.topology {
                Topology::Core {
                    shards, split: s, ..
                } => {
                    if s {
                        split += 1;
                    }
                    if shards > 1 {
                        sharded += 1;
                    }
                }
                Topology::Replicated { .. } => replicated += 1,
            }
        }
        // The CI budget (≥100 seeds) must exercise every oracle family;
        // require each regime to appear often in any 256-seed window.
        assert!(split >= 10, "split cases too rare: {split}/256");
        assert!(sharded >= 20, "sharded cases too rare: {sharded}/256");
        assert!(faulty >= 40, "faulty cases too rare: {faulty}/256");
        assert!(
            replicated >= 40,
            "replicated cases too rare: {replicated}/256"
        );
    }
}
