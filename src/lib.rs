//! # ReFlex-rs — Remote Flash ≈ Local Flash, reproduced in Rust
//!
//! A full reproduction of *ReFlex: Remote Flash ≈ Local Flash* (Klimovic,
//! Litz, Kozyrakis — ASPLOS 2017) as a deterministic simulation: the
//! dataplane server with its QoS scheduler is implemented in full, and the
//! hardware the paper ran on (NVMe Flash devices, 10GbE NICs, kernel-bypass
//! queues) is replaced by calibrated mechanistic models.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `reflex-sim` | discrete-event engine, virtual time, RNG, histograms |
//! | [`flash`] | `reflex-flash` | NVMe Flash device model (devices A/B/C) |
//! | [`net`] | `reflex-net` | 10GbE fabric, Linux/IX stacks, wire protocol |
//! | [`qos`] | `reflex-qos` | cost model, tokens, **Algorithm 1** scheduler |
//! | [`dataplane`] | `reflex-dataplane` | polling server threads, Table-1 ABI, ACLs |
//! | [`core`] | `reflex-core` | server + control plane + clients + [`core::Testbed`] |
//! | [`telemetry`] | `reflex-telemetry` | counters, per-tenant stage spans, SLO monitor, snapshots |
//! | [`faults`] | `reflex-faults` | deterministic fault injection + recovery measurement |
//! | [`replication`] | `reflex-replication` | client-driven R-way replication, quorum reads, failover |
//! | [`baselines`] | `reflex-baselines` | local SPDK, iSCSI, libaio comparisons |
//! | [`workloads`] | `reflex-workloads` | FIO, FlashX-like, RocksDB-like apps |
//!
//! # Quickstart
//!
//! ```
//! use reflex::core::{Testbed, WorkloadSpec};
//! use reflex::qos::{SloSpec, TenantClass, TenantId};
//! use reflex::sim::SimDuration;
//!
//! // A latency-critical tenant: 50K IOPS, 100% reads, p95 <= 500us.
//! let slo = SloSpec::new(50_000, 100, SimDuration::from_micros(500));
//! let mut tb = Testbed::builder().build();
//! tb.add_workload(WorkloadSpec::open_loop(
//!     "app",
//!     TenantId(1),
//!     TenantClass::LatencyCritical(slo),
//!     50_000.0,
//! ))?;
//! tb.run(SimDuration::from_millis(20)); // warmup
//! tb.begin_measurement();
//! tb.run(SimDuration::from_millis(50));
//! let report = tb.report();
//! let app = report.workload("app");
//! assert!(app.p95_read_us() < 500.0);
//! # Ok::<(), reflex::core::TestbedError>(())
//! ```

pub use reflex_baselines as baselines;
pub use reflex_core as core;
pub use reflex_dataplane as dataplane;
pub use reflex_faults as faults;
pub use reflex_flash as flash;
pub use reflex_net as net;
pub use reflex_qos as qos;
pub use reflex_replication as replication;
pub use reflex_sim as sim;
pub use reflex_telemetry as telemetry;
pub use reflex_workloads as workloads;
