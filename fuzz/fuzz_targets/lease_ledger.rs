//! Token accounting under arbitrary grant/renegotiate sequences: the
//! replicated lease ledger and the QoS scheduler share this target —
//! both interpret the buffer as an op stream and assert conservation.

// With the vendored shim these are plain binaries; restore `#![no_main]`
// here when pointing the dependency at the real libfuzzer-sys.

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    reflex_swarm::harness::check_lease_ops(data);
    reflex_swarm::harness::check_sched_ops(data);
});
