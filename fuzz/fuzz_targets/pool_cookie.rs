//! PoolKey/cookie packing bijection and slab aliasing/resurrection.

// With the vendored shim these are plain binaries; restore `#![no_main]`
// here when pointing the dependency at the real libfuzzer-sys.

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    reflex_swarm::harness::check_pool_cookie(data);
});
