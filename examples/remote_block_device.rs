//! Legacy applications on the remote block device (paper §5.6).
//!
//! Runs the FIO tester and the RocksDB-style `db_bench` workloads against
//! the three block data paths of Figure 7 — local kernel NVMe, the ReFlex
//! remote block device driver, and iSCSI — and prints per-path results.
//!
//! Run with: `cargo run --release --example remote_block_device`

use reflex::flash::device_a;
use reflex::workloads::{run_db_bench, Backend, BackendProfile, DbBenchmark, FioJob, LsmConfig};

fn main() {
    let profiles = [
        BackendProfile::local_nvme(),
        BackendProfile::reflex_remote(),
        BackendProfile::iscsi_remote(),
    ];

    println!("--- FIO: 6 threads x QD32, 4KB random read ---");
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "path", "IOPS", "MB/s", "p95 us"
    );
    for p in &profiles {
        let mut b = Backend::new(p.clone(), device_a(), 6, 11);
        let rep = FioJob {
            threads: 6,
            queue_depth: 32,
            ..FioJob::default()
        }
        .run(&mut b, 1);
        println!(
            "{:<8} {:>10.0} {:>10.0} {:>12.0}",
            p.name,
            rep.iops,
            rep.mb_per_sec,
            rep.latency.p95().as_micros_f64()
        );
    }

    println!("\n--- RocksDB db_bench (scaled 2GB database) ---");
    println!(
        "{:<8} {:>8} {:>8} {:>8}   (seconds; lower is better)",
        "path", "BL", "RR", "RwW"
    );
    let mut local_times = [0.0f64; 3];
    for p in &profiles {
        let mut row = Vec::new();
        for (i, bench) in DbBenchmark::all().into_iter().enumerate() {
            let mut b = Backend::new(p.clone(), device_a(), 6, 23);
            let t = run_db_bench(bench, &LsmConfig::small(), &mut b, 5).as_secs_f64();
            if p.name == "local" {
                local_times[i] = t;
            }
            row.push(t);
        }
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>8.2}",
            p.name, row[0], row[1], row[2]
        );
        if p.name != "local" {
            println!(
                "{:<8} {:>7.2}x {:>7.2}x {:>7.2}x  (slowdown vs local)",
                "",
                row[0] / local_times[0],
                row[1] / local_times[1],
                row[2] / local_times[2]
            );
        }
    }
    println!(
        "\nReFlex keeps legacy applications within a few percent of \
              local Flash except where client-side Linux overheads bite; \
              iSCSI costs 30-70% on read-heavy workloads (paper Figure 7)."
    );
}
