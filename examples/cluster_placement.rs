//! Global control plane: SLO-aware tenant placement across a cluster of
//! ReFlex servers (paper §4.3 future work).
//!
//! Places a stream of tenants with mixed latency requirements on a
//! four-server cluster and shows the planner separating latency classes
//! to preserve cluster-wide throughput.
//!
//! Run with: `cargo run --release --example cluster_placement`

use reflex::core::{CapacityProfile, ClusterPlanner, ServerDescriptor, ServerId};
use reflex::qos::{CostModel, SloSpec, TenantId};
use reflex::sim::SimDuration;

fn main() {
    let mut planner = ClusterPlanner::new(
        (0..4)
            .map(|i| {
                ServerDescriptor::new(
                    ServerId(i),
                    CapacityProfile::device_a_default(),
                    CostModel::for_device_a(),
                )
            })
            .collect(),
    );

    // A mixed fleet: latency-sensitive caches, mid-tier databases and
    // relaxed analytics tenants arrive interleaved.
    let demands = [
        ("cache", 40_000u64, 100u8, 300u64),
        ("db", 60_000, 90, 1_000),
        ("analytics", 80_000, 95, 5_000),
    ];
    println!(
        "{:<14} {:>10} {:>8} {:>10}  placed_on",
        "tenant", "IOPS", "reads%", "p95_bound"
    );
    let mut id = 0u32;
    for round in 0..3 {
        for (kind, iops, read_pct, p95_us) in demands {
            id += 1;
            let slo = SloSpec::new(iops, read_pct, SimDuration::from_micros(p95_us));
            match planner.place(TenantId(id), slo) {
                Ok(server) => println!(
                    "{kind:<11}#{round} {iops:>10} {read_pct:>8} {p95_us:>8}us  server {}",
                    server.0
                ),
                Err(e) => println!(
                    "{kind:<11}#{round} {iops:>10} {read_pct:>8} {p95_us:>8}us  REJECTED: {e}"
                ),
            }
        }
    }

    println!("\nPer-server view:");
    for s in planner.servers() {
        println!(
            "  server {}: {} tenants, strictest SLO {:?}, headroom {:.0} tokens/s",
            s.id.0,
            s.tenant_count(),
            s.strictest_slo().map(|d| format!("{d}")),
            s.headroom_tokens_per_sec()
        );
    }
    println!(
        "\nTotal cluster headroom preserved: {:.0} tokens/s. Strict (300us) \
         tenants share servers so they do not shrink the relaxed servers' \
         token budgets — the co-location policy the paper sketches for the \
         global control plane.",
        planner.total_headroom()
    );
}
