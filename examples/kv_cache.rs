//! A Flash-backed key-value cache on remote Flash — the datacenter use
//! case that motivates the paper (§1: "NVMe Flash … the preferred storage
//! medium for many data-intensive, online services").
//!
//! A KV cache keeps its hash index and hottest values in RAM and the bulk
//! of the values on ReFlex-served remote Flash: every GET that misses RAM
//! is one 4KB read at a Zipfian-popular address (the in-RAM head flattens
//! the skew that reaches Flash); SETs rewrite values. The cache registers
//! an SLO so that co-located batch tenants cannot ruin its tail latency.
//!
//! Run with: `cargo run --release --example kv_cache`

use reflex::core::{AddrPattern, Testbed, WorkloadSpec};
use reflex::qos::{SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut tb = Testbed::builder().seed(55).build();

    // The cache: 90K GETs/s + 10K SETs/s over Zipf(0.99)-popular values,
    // guaranteed 500us p95 reads.
    let slo = SloSpec::new(100_000, 90, SimDuration::from_micros(500));
    let mut cache = WorkloadSpec::open_loop(
        "kv-cache",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        100_000.0,
    );
    cache.read_pct = 90;
    // Zipf(0.9): what reaches Flash after the RAM tier absorbs the very
    // hottest keys. (At raw Zipf(0.99) the single hottest value would put
    // ~10% of all reads on one Flash channel and the tail degrades — run
    // it yourself to see why caches keep their head in RAM.)
    cache.addr_pattern = AddrPattern::Zipfian {
        theta_permille: 900,
    };
    cache.namespace = (0, 64 << 30); // 64GB value log
    cache.conns = 16;
    cache.client_threads = 4;
    tb.add_workload(cache)?;

    // A co-located batch job scanning cold data as fast as it is allowed.
    let mut batch =
        WorkloadSpec::closed_loop("batch-scan", TenantId(2), TenantClass::BestEffort, 32);
    batch.read_pct = 70;
    batch.conns = 8;
    batch.client_threads = 4;
    batch.namespace = (64 << 30, 256 << 30);
    tb.add_workload(batch)?;

    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();

    let kv = report.workload("kv-cache");
    let batch = report.workload("batch-scan");
    println!(
        "kv-cache  : {:>8.0} ops/s  GET p50 {:>4.0}us  p95 {:>4.0}us  p99 {:>4.0}us",
        kv.iops,
        kv.read_latency.p50().as_micros_f64(),
        kv.p95_read_us(),
        kv.read_latency.p99().as_micros_f64()
    );
    println!(
        "batch-scan: {:>8.0} ops/s (best-effort leftover)",
        batch.iops
    );
    println!(
        "token use : {:>8.0} tokens/s of the 500us budget",
        report.token_usage_per_sec
    );
    assert!(kv.p95_read_us() < 500.0, "cache SLO must hold");
    println!(
        "\nThe cache's 500us p95 holds despite the scan — Zipfian hot \
              values and a mixed batch competitor included."
    );
    Ok(())
}
