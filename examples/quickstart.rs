//! Quickstart: one latency-critical tenant accessing remote Flash through
//! ReFlex over simulated 10GbE, with latency and throughput reported.
//!
//! Run with: `cargo run --release --example quickstart`

use reflex::core::{Testbed, WorkloadSpec};
use reflex::qos::{SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server with one dataplane thread on simulated device A, one IX
    // client machine, 10GbE fabric — the paper's testbed in miniature.
    let mut tb = Testbed::builder().seed(42).build();

    // Register a tenant with an SLO: 100K IOPS of 4KB reads with p95 read
    // latency under 500us, and offer exactly that load.
    let slo = SloSpec::new(100_000, 100, SimDuration::from_micros(500));
    let mut spec = WorkloadSpec::open_loop(
        "app",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        100_000.0,
    );
    spec.conns = 8;
    spec.client_threads = 2;
    tb.add_workload(spec)?;

    // Warm up, then measure.
    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));

    let report = tb.report();
    let app = report.workload("app");
    println!("tenant        : {}", app.name);
    println!("throughput    : {:.0} IOPS", app.iops);
    println!(
        "read latency  : mean {:.0}us  p50 {:.0}us  p95 {:.0}us  p99 {:.0}us",
        app.mean_read_us(),
        app.read_latency.p50().as_micros_f64(),
        app.p95_read_us(),
        app.read_latency.p99().as_micros_f64()
    );
    println!("errors        : {}", app.errors);
    println!("token usage   : {:.0} tokens/s", report.token_usage_per_sec);
    for (i, t) in report.threads.iter().enumerate() {
        println!(
            "server core {i} : {:.1}% busy ({:.1}% QoS scheduling)",
            t.busy_fraction * 100.0,
            t.sched_fraction * 100.0
        );
    }
    assert!(app.p95_read_us() < 500.0, "SLO should be met");
    println!("\nSLO met: p95 {:.0}us <= 500us", app.p95_read_us());
    Ok(())
}
