//! Trace replay: drive ReFlex with a recorded I/O schedule.
//!
//! Builds a synthetic diurnal trace — a calm period, a traffic spike, and
//! a recovery — and replays it against a tenant with an SLO sized for the
//! calm period, showing how the spike is absorbed (burst allowance, then
//! rate limiting) and surfaced to the control plane.
//!
//! Run with: `cargo run --release --example trace_replay`

use std::sync::Arc;

use reflex::core::{Testbed, TraceOp, WorkloadSpec};
use reflex::qos::{SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;

fn diurnal_trace() -> Arc<[TraceOp]> {
    let mut ops = Vec::new();
    let mut t = SimDuration::ZERO;
    let mut addr = 0u64;
    let push = |ops: &mut Vec<TraceOp>, t: SimDuration, addr: &mut u64| {
        *addr = (*addr + 7919 * 4096) % (1 << 36);
        ops.push(TraceOp {
            at: t,
            is_read: true,
            addr: *addr,
            len: 4096,
        });
    };
    // Phase 1 (0-100ms): calm, 40K IOPS.
    while t < SimDuration::from_millis(100) {
        push(&mut ops, t, &mut addr);
        t += SimDuration::from_micros(25);
    }
    // Phase 2 (100-200ms): spike, 160K IOPS.
    while t < SimDuration::from_millis(200) {
        push(&mut ops, t, &mut addr);
        t += SimDuration::from_nanos(6_250);
    }
    // Phase 3 (200-300ms): recovery, 40K IOPS.
    while t < SimDuration::from_millis(300) {
        push(&mut ops, t, &mut addr);
        t += SimDuration::from_micros(25);
    }
    ops.into()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = diurnal_trace();
    println!(
        "trace: {} ops over 300ms (40K -> 160K -> 40K IOPS)",
        trace.len()
    );

    let mut tb = Testbed::builder().seed(61).build();
    // SLO sized for the calm phase plus some headroom: 60K IOPS.
    let slo = SloSpec::new(60_000, 100, SimDuration::from_micros(500));
    let mut spec = WorkloadSpec::from_trace(
        "diurnal",
        TenantId(1),
        TenantClass::LatencyCritical(slo),
        trace,
    );
    spec.conns = 8;
    spec.client_threads = 4;
    tb.begin_measurement();
    tb.add_workload(spec)?;
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    let w = report.workload("diurnal");

    println!("\n10ms buckets of completed IOPS:");
    for (i, p) in w.iops_series.iter().enumerate() {
        if i % 3 == 0 {
            println!("  t={:>3}ms  {:>7.0} IOPS", i * 10, p.rate_per_sec);
        }
    }
    println!("\ncompleted : {} reads", w.read_latency.count());
    println!(
        "p95 read  : {:.0}us — far above the 500us bound, as expected: the \
         160K spike is 2.7x the 60K reservation, so the scheduler rate-limits \
         it and the excess queues",
        w.p95_read_us()
    );
    println!(
        "flagged   : {:?} — the control plane detected the persistent \
         deficit and marked the tenant for SLO renegotiation (see \
         examples in tests/renegotiation.rs for the follow-up)",
        report.renegotiations
    );
    Ok(())
}
