//! Multi-tenant QoS: the paper's Figure 5 scenario, interactively.
//!
//! Four tenants share one ReFlex server on device A: two latency-critical
//! (A: 120K IOPS 100% reads, B: 70K IOPS 80% reads, both with 500us p95
//! SLOs) and two best-effort (C: 95% reads, D: 25% reads). The scenario is
//! run twice — with the QoS scheduler enabled and with it effectively
//! disabled (unlimited tokens) — showing that without scheduling,
//! read/write interference destroys everyone's tail latency.
//!
//! Run with: `cargo run --release --example multi_tenant_qos`

use reflex::core::{CapacityProfile, Testbed, TestbedReport, WorkloadSpec};
use reflex::qos::{SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;

fn scenario(qos_enabled: bool) -> Result<TestbedReport, Box<dyn std::error::Error>> {
    let mut builder = Testbed::builder().seed(7);
    if !qos_enabled {
        builder = builder.capacity(CapacityProfile::unlimited());
    }
    let mut tb = builder.build();

    let slo = |iops, read_pct| {
        TenantClass::LatencyCritical(SloSpec::new(iops, read_pct, SimDuration::from_micros(500)))
    };
    let mut add = |name: &str, id: u32, class, iops, read_pct: u8| {
        let mut spec = WorkloadSpec::open_loop(name, TenantId(id), class, iops);
        spec.read_pct = read_pct;
        spec.conns = 8;
        spec.client_threads = 4;
        tb.add_workload(spec)
    };
    add("A (LC 120K,100%r)", 1, slo(120_000, 100), 120_000.0, 100)?;
    add("B (LC 70K,80%r)", 2, slo(70_000, 80), 70_000.0, 80)?;
    add("C (BE,95%r)", 3, TenantClass::BestEffort, 150_000.0, 95)?;
    add("D (BE,25%r)", 4, TenantClass::BestEffort, 150_000.0, 25)?;

    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    Ok(tb.report())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for enabled in [false, true] {
        let label = if enabled {
            "I/O sched enabled"
        } else {
            "I/O sched disabled"
        };
        println!("=== {label} ===");
        let report = scenario(enabled)?;
        println!("{:<22} {:>10} {:>12}", "tenant", "IOPS", "p95 read us");
        for w in &report.workloads {
            println!("{:<22} {:>10.0} {:>12.0}", w.name, w.iops, w.p95_read_us());
        }
        println!();
    }
    println!(
        "With QoS, the LC tenants meet their 500us p95 SLOs and BE \
              tenants split the leftover throughput (D gets fewer IOPS than \
              C because its writes cost 10x). Without QoS, tail latency \
              collapses for everyone — the paper's Figure 5."
    );
    Ok(())
}
