//! Device calibration: the control plane's §3.2.1 procedure, end to end.
//!
//! Sweeps the simulated device with several read/write ratios, finds the
//! max IOPS each ratio sustains at the target tail latency, fits the
//! linear cost model `C(write)` by least squares, and prints the resulting
//! cost model and capacity table — what a ReFlex deployment would run when
//! a new device (or a worn one) is attached.
//!
//! Run with: `cargo run --release --example device_calibration`

use reflex::core::sweep_device;
use reflex::flash::{device_a, device_b, device_c};
use reflex::qos::{fit_cost_model, max_iops_at_latency, RatioCapacity};
use reflex::sim::SimDuration;

fn main() {
    let target_us = 1_000.0;
    for profile in [device_a(), device_b(), device_c()] {
        println!("=== {} ===", profile.name);
        let max_tokens = profile.token_rate();
        let mut observations = Vec::new();
        for read_pct in [50u8, 75, 90, 95, 100] {
            let r = read_pct as f64 / 100.0;
            // Initial cost guess only scales the sweep range.
            let guess = profile.write_cost_tokens();
            let cost = r + (1.0 - r) * guess;
            let offered: Vec<f64> = (1..=12)
                .map(|i| max_tokens / cost * i as f64 / 10.0)
                .collect();
            let sweep = sweep_device(
                &profile,
                read_pct,
                &offered,
                SimDuration::from_millis(250),
                3,
            );
            if let Some(iops) = max_iops_at_latency(&sweep, target_us) {
                println!("  r={read_pct:>3}%  max {iops:>9.0} IOPS at p95 <= {target_us}us");
                observations.push(RatioCapacity {
                    read_pct,
                    max_iops: iops,
                });
            }
        }
        match fit_cost_model(&observations) {
            Ok(fit) => {
                println!(
                    "  fitted: C(write) = {:.1} tokens, capacity = {:.0} tokens/s, \
                     C(read,100%) = {:.2}, rms err {:.1}%",
                    fit.write_cost,
                    fit.token_rate,
                    fit.read_only_cost,
                    fit.rms_rel_error * 100.0
                );
                let model = fit.to_cost_model(4096);
                println!(
                    "  cost model: read {}mt, read-only {}mt, write {}mt per 4KB page",
                    model
                        .read_cost(reflex::qos::LoadMix::Mixed)
                        .as_millitokens(),
                    model
                        .read_cost(reflex::qos::LoadMix::ReadOnly)
                        .as_millitokens(),
                    model.write_cost().as_millitokens()
                );
            }
            Err(e) => println!("  calibration failed: {e}"),
        }
        println!();
    }
    println!("Paper-published write costs: device A = 10, B = 20, C = 16 tokens.");
}
