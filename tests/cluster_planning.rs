//! Global control plane integration: placement decisions from the
//! [`ClusterPlanner`] drive real testbeds, demonstrating why SLO-aware
//! placement matters (paper §4.3 future work).

use reflex::core::{
    CapacityProfile, ClusterPlanner, ServerDescriptor, ServerId, Testbed, WorkloadSpec,
};
use reflex::qos::{CostModel, SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;

fn device_a_server(id: u32) -> ServerDescriptor {
    ServerDescriptor::new(
        ServerId(id),
        CapacityProfile::device_a_default(),
        CostModel::for_device_a(),
    )
}

/// Runs one ReFlex testbed hosting the given LC tenants (each offered its
/// full reservation) plus one best-effort filler; returns (worst LC p95,
/// BE throughput).
fn run_server(tenants: &[(u32, SloSpec)], seed: u64) -> (f64, f64) {
    let mut tb = Testbed::builder().seed(seed).build();
    for (id, slo) in tenants {
        let mut spec = WorkloadSpec::open_loop(
            &format!("t{id}"),
            TenantId(*id),
            TenantClass::LatencyCritical(*slo),
            slo.iops as f64,
        );
        spec.read_pct = slo.read_pct;
        spec.conns = 8;
        spec.client_threads = 4;
        tb.add_workload(spec).expect("planner checked admission");
    }
    let mut be = WorkloadSpec::closed_loop("be", TenantId(999), TenantClass::BestEffort, 16);
    be.read_pct = 90;
    be.conns = 8;
    be.client_threads = 4;
    tb.add_workload(be).expect("BE accepted");

    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    let report = tb.report();
    let worst_p95 = report
        .workloads
        .iter()
        .filter(|w| w.name != "be")
        .map(|w| w.p95_read_us())
        .fold(0.0f64, f64::max);
    (worst_p95, report.workload("be").iops)
}

#[test]
fn planner_decisions_hold_up_in_simulation() {
    let mut planner = ClusterPlanner::new(vec![device_a_server(0), device_a_server(1)]);
    let strict = SloSpec::new(60_000, 100, SimDuration::from_micros(400));
    let relaxed = SloSpec::new(150_000, 95, SimDuration::from_millis(2));

    let s1 = planner.place(TenantId(1), strict).expect("fits");
    let s2 = planner.place(TenantId(2), relaxed).expect("fits");
    assert_ne!(s1, s2, "planner should separate the latency classes");

    // Drive each placement: both servers meet their tenants' SLOs.
    let (p95_strict, _) = run_server(&[(1, strict)], 101);
    assert!(p95_strict < 400.0, "strict tenant p95 {p95_strict:.0}us");
    let (p95_relaxed, _) = run_server(&[(2, relaxed)], 102);
    assert!(
        p95_relaxed < 2_000.0,
        "relaxed tenant p95 {p95_relaxed:.0}us"
    );
}

#[test]
fn colocating_mixed_classes_wastes_best_effort_throughput() {
    // Counterfactual: the strict and relaxed tenants forced onto ONE
    // server. The strict SLO caps the whole server's token budget, so the
    // best-effort filler collapses versus the separated placement.
    let strict = SloSpec::new(60_000, 100, SimDuration::from_micros(400));
    let relaxed_small = SloSpec::new(40_000, 95, SimDuration::from_millis(2));

    // Separated: the relaxed server runs at its 2ms budget.
    let (_, be_separated) = run_server(&[(2, relaxed_small)], 103);
    // Mixed: the relaxed tenant shares with a strict one at a 400us budget.
    let (_, be_mixed) = run_server(&[(1, strict), (2, relaxed_small)], 103);
    assert!(
        be_separated > be_mixed * 1.5,
        "separated BE {be_separated:.0} should dwarf mixed BE {be_mixed:.0}"
    );
}

#[test]
fn cluster_capacity_grows_with_servers() {
    let mut small = ClusterPlanner::new(vec![device_a_server(0)]);
    let mut big = ClusterPlanner::new(vec![device_a_server(0), device_a_server(1)]);
    let slo = SloSpec::new(100_000, 90, SimDuration::from_micros(500));
    let mut placed_small = 0;
    let mut placed_big = 0;
    for i in 0..10 {
        if small.place(TenantId(i), slo).is_ok() {
            placed_small += 1;
        }
        if big.place(TenantId(i), slo).is_ok() {
            placed_big += 1;
        }
    }
    assert!(
        placed_big >= 2 * placed_small,
        "{placed_small} vs {placed_big}"
    );
}
