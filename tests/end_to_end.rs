//! Cross-crate integration tests: the paper's headline claims, verified
//! end to end through the facade crate.

use reflex::baselines::{BaselineConfig, BaselineServer};
use reflex::core::{Testbed, TestbedBuilder, WorkloadSpec};
use reflex::net::StackProfile;
use reflex::qos::{SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;

fn lc(iops: u64, read_pct: u8, p95_us: u64) -> TenantClass {
    TenantClass::LatencyCritical(SloSpec::new(
        iops,
        read_pct,
        SimDuration::from_micros(p95_us),
    ))
}

/// "Remote Flash ≈ Local Flash": the unloaded remote read through the
/// full stack (client library, TCP over 10GbE, dataplane, QoS scheduler,
/// NVMe) stays within ~25us of local access.
#[test]
fn headline_remote_approx_local() {
    // Local unloaded read.
    let mut rig = reflex::baselines::LocalRig::new(reflex::flash::device_a(), 1, 5);
    let local = rig.run_unloaded(100, 4096, 2_000);
    let local_avg = local.read_latency.mean().as_micros_f64();

    // Remote unloaded read through ReFlex.
    let mut tb = Testbed::builder().seed(5).build();
    tb.add_workload(WorkloadSpec::closed_loop(
        "probe",
        TenantId(1),
        lc(20_000, 100, 500),
        1,
    ))
    .expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    let remote_avg = tb.report().workload("probe").mean_read_us();

    let overhead = remote_avg - local_avg;
    // Paper: +21us over local (IX client). Allow 5-30us.
    assert!(
        (5.0..30.0).contains(&overhead),
        "remote overhead {overhead:.1}us (local {local_avg:.1}, remote {remote_avg:.1})"
    );
}

/// The full comparison ordering across systems, measured under identical
/// conditions: ReFlex < libaio < iSCSI for unloaded remote reads.
#[test]
fn system_ordering_under_one_roof() {
    let probe = || {
        let mut spec = WorkloadSpec::closed_loop("probe", TenantId(1), TenantClass::BestEffort, 1);
        spec.read_pct = 100;
        spec
    };
    let run_baseline = |config: BaselineConfig| {
        let mut tb = TestbedBuilder::new()
            .server_stack(StackProfile::linux_tcp())
            .client_machines(vec![StackProfile::ix_tcp()])
            .seed(6)
            .build_with(move |f, d, m| BaselineServer::new(m, f, d, config, 7));
        tb.add_workload(probe()).expect("BE accepted");
        tb.run(SimDuration::from_millis(50));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(300));
        tb.report().workload("probe").mean_read_us()
    };
    let libaio = run_baseline(BaselineConfig::libaio());
    let iscsi = run_baseline(BaselineConfig::iscsi());

    let mut tb = Testbed::builder().seed(6).build();
    tb.add_workload(WorkloadSpec::closed_loop(
        "probe",
        TenantId(1),
        lc(20_000, 100, 500),
        1,
    ))
    .expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(300));
    let reflex = tb.report().workload("probe").mean_read_us();

    assert!(
        reflex < libaio && libaio < iscsi,
        "ordering violated: reflex {reflex:.0} / libaio {libaio:.0} / iscsi {iscsi:.0}"
    );
}

/// SLO enforcement survives an adversarial mix of tenants: three LC
/// tenants with different SLOs and ratios plus two write-heavy BE tenants.
#[test]
fn slos_hold_under_adversarial_mix() {
    let mut tb = Testbed::builder().seed(8).build();
    let mut add_lc = |name: &str, id, iops: u64, read_pct: u8, p95_us| {
        let mut spec =
            WorkloadSpec::open_loop(name, TenantId(id), lc(iops, read_pct, p95_us), iops as f64);
        spec.read_pct = read_pct;
        spec.conns = 8;
        spec.client_threads = 4;
        tb.add_workload(spec).expect("admissible");
    };
    add_lc("gold", 1, 100_000, 100, 500);
    add_lc("silver", 2, 40_000, 90, 1_000);
    add_lc("bronze", 3, 20_000, 80, 2_000);
    for (i, name) in ["noise1", "noise2"].iter().enumerate() {
        let mut spec =
            WorkloadSpec::closed_loop(name, TenantId(10 + i as u32), TenantClass::BestEffort, 16);
        spec.read_pct = 20;
        spec.conns = 8;
        spec.client_threads = 4;
        tb.add_workload(spec).expect("BE accepted");
    }
    tb.run(SimDuration::from_millis(100));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(400));
    let report = tb.report();
    for (name, iops, p95_bound) in [
        ("gold", 100_000.0, 500.0),
        ("silver", 40_000.0, 1_000.0),
        ("bronze", 20_000.0, 2_000.0),
    ] {
        let w = report.workload(name);
        assert!(
            w.iops > iops * 0.93,
            "{name} got {:.0} of {iops} IOPS",
            w.iops
        );
        assert!(
            w.p95_read_us() < p95_bound * 1.1,
            "{name} p95 {:.0}us vs bound {p95_bound}us",
            w.p95_read_us()
        );
    }
}

/// Determinism across the whole stack: two identically-seeded testbeds
/// with a mixed scenario produce bit-identical reports.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let mut tb = Testbed::builder().seed(99).build();
        let mut spec = WorkloadSpec::open_loop("x", TenantId(1), lc(80_000, 90, 1_000), 80_000.0);
        spec.read_pct = 90;
        spec.conns = 8;
        tb.add_workload(spec).expect("admitted");
        let mut be = WorkloadSpec::closed_loop("y", TenantId(2), TenantClass::BestEffort, 8);
        be.read_pct = 30;
        tb.add_workload(be).expect("accepted");
        tb.run(SimDuration::from_millis(60));
        tb.begin_measurement();
        tb.run(SimDuration::from_millis(120));
        let r = tb.report();
        (
            r.workload("x").iops.to_bits(),
            r.workload("x").p95_read_us().to_bits(),
            r.workload("y").iops.to_bits(),
            r.token_usage_per_sec.to_bits(),
        )
    };
    assert_eq!(run(), run());
}

/// The wire protocol, QoS accounting and device stats agree end to end:
/// every admitted request is counted exactly once everywhere.
#[test]
fn accounting_consistency() {
    let mut tb = Testbed::builder().seed(12).build();
    let mut spec = WorkloadSpec::open_loop("w", TenantId(1), lc(50_000, 80, 1_000), 50_000.0);
    spec.read_pct = 80;
    spec.conns = 4;
    tb.add_workload(spec).expect("admitted");
    tb.run(SimDuration::from_millis(50));
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(200));
    let report = tb.report();
    let w = report.workload("w");
    let t = &report.threads[0];
    let stats = t.stats.expect("reflex exposes thread stats");
    // Server-side counters are cumulative (warmup included), so they bound
    // the measured window's completions from above.
    assert!(stats.rx_msgs >= w.issued);
    assert!(stats.submitted <= stats.rx_msgs);
    assert!(stats.completed <= stats.submitted);
    assert_eq!(stats.acl_rejections, 0);
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(w.errors, 0);
    // Token usage over the window ≈ LC spend: 0.8*50K*1 + 0.2*50K*10 = 140K/s.
    assert!(
        (120_000.0..160_000.0).contains(&report.token_usage_per_sec),
        "token usage {:.0}",
        report.token_usage_per_sec
    );
}
