//! Soak test: a two-second mixed scenario with churn — tenants of every
//! class, barrier traffic, renegotiation and thread scaling all active —
//! verifying global invariants at the end.

use reflex::core::{ServerConfig, Testbed, WorkloadSpec};
use reflex::qos::{SloSpec, TenantClass, TenantId};
use reflex::sim::SimDuration;
use reflex::telemetry::{Stage, TenantKey};

#[test]
fn two_second_mixed_soak_holds_invariants() {
    let mut tb = Testbed::builder()
        .seed(1234)
        .server(ServerConfig {
            threads: 2,
            max_threads: 4,
            auto_scale: true,
            ..ServerConfig::default()
        })
        .client_machines(vec![
            reflex::net::StackProfile::ix_tcp(),
            reflex::net::StackProfile::linux_tcp(),
        ])
        .build();
    // Instrument the whole soak: recording is passive, and the exit
    // checks below hold the sink to the conservation invariants.
    tb.enable_telemetry();

    // LC tenants of different classes and ratios.
    let lc = |iops, read_pct, p95_us| {
        TenantClass::LatencyCritical(SloSpec::new(
            iops,
            read_pct,
            SimDuration::from_micros(p95_us),
        ))
    };
    let mut spec = WorkloadSpec::open_loop("gold", TenantId(1), lc(80_000, 100, 500), 80_000.0);
    spec.conns = 8;
    spec.client_threads = 4;
    tb.add_workload(spec).expect("admitted");

    let mut spec = WorkloadSpec::open_loop("mixed", TenantId(2), lc(30_000, 80, 1_000), 30_000.0);
    spec.read_pct = 80;
    spec.conns = 4;
    spec.client_threads = 2;
    spec.client_machine = 1;
    tb.add_workload(spec).expect("admitted");

    // A sharded bulk reader and a write-heavy BE tenant.
    let mut spec = WorkloadSpec::closed_loop("bulk", TenantId(3), TenantClass::BestEffort, 8);
    spec.conns = 8;
    spec.client_threads = 4;
    spec.shards = 2;
    tb.add_workload(spec).expect("accepted");

    let mut spec = WorkloadSpec::closed_loop("writer", TenantId(4), TenantClass::BestEffort, 8);
    spec.read_pct = 10;
    spec.conns = 4;
    spec.client_threads = 2;
    spec.client_machine = 1;
    tb.add_workload(spec).expect("accepted");

    // Zipfian hot-spot tenant.
    let mut spec = WorkloadSpec::open_loop("hot", TenantId(5), TenantClass::BestEffort, 20_000.0);
    spec.addr_pattern = reflex::core::AddrPattern::Zipfian {
        theta_permille: 990,
    };
    spec.conns = 4;
    spec.client_threads = 2;
    tb.add_workload(spec).expect("accepted");

    tb.run(SimDuration::from_millis(200));

    // Mid-run renegotiation: gold grows to 120K.
    tb.world_mut()
        .server_mut()
        .renegotiate_tenant(
            TenantId(1),
            SloSpec::new(120_000, 100, SimDuration::from_micros(500)),
        )
        .expect("fits");

    tb.begin_measurement();
    tb.run(SimDuration::from_secs(2));
    let report = tb.report();

    // 1. LC tenants keep their SLOs through the churn.
    let gold = report.workload("gold");
    assert!(gold.iops > 75_000.0, "gold IOPS {:.0}", gold.iops);
    assert!(
        gold.p95_read_us() < 550.0,
        "gold p95 {:.0}",
        gold.p95_read_us()
    );
    let mixed = report.workload("mixed");
    assert!(mixed.iops > 28_000.0, "mixed IOPS {:.0}", mixed.iops);
    assert!(
        mixed.p95_read_us() < 1_100.0,
        "mixed p95 {:.0}",
        mixed.p95_read_us()
    );

    // 2. Nobody starves and nothing errors.
    for w in &report.workloads {
        assert!(w.iops > 100.0, "{} starved: {:.0}", w.name, w.iops);
        assert_eq!(w.errors, 0, "{} saw errors", w.name);
    }

    // 3. Token spend stays within the device budget for the strictest SLO.
    let budget = tb
        .world()
        .server()
        .capacity()
        .tokens_per_sec_at(SimDuration::from_micros(500));
    assert!(
        report.token_usage_per_sec <= budget * 1.05,
        "token usage {:.0} exceeds budget {budget:.0}",
        report.token_usage_per_sec
    );

    // 4. Server counters are consistent. Per-thread completed <= submitted
    // always holds; rx >= submitted only holds globally because tenant
    // rebalancing can adopt queued requests onto a thread that never saw
    // their packets.
    let mut rx_total = 0u64;
    let mut submitted_total = 0u64;
    for t in &report.threads {
        let s = t.stats.expect("reflex threads expose stats");
        assert!(s.completed <= s.submitted);
        rx_total += s.rx_msgs;
        submitted_total += s.submitted;
        assert_eq!(s.unbound_conns, 0);
        assert_eq!(s.decode_errors, 0);
    }
    assert!(
        submitted_total <= rx_total,
        "{submitted_total} > {rx_total}"
    );

    // 5. The throughput time series covers the whole window.
    assert!(
        gold.iops_series.len() >= 190,
        "series too short: {} points",
        gold.iops_series.len()
    );

    // 6. Telemetry recorded the soak: per-stage spans exist for every
    // tenant the dataplane served, and the SLO monitor closed rolling
    // windows for the LC tenants.
    let snap = report.telemetry.as_ref().expect("telemetry enabled");
    for tenant in [1u32, 2, 4, 5] {
        let t = TenantKey(tenant);
        for stage in [Stage::NicQueue, Stage::Dataplane, Stage::Channel, Stage::Cq] {
            let h = snap
                .stage(t, stage)
                .unwrap_or_else(|| panic!("tenant {tenant} missing {} span", stage.name()));
            assert!(!h.is_empty(), "tenant {tenant} empty {} span", stage.name());
        }
    }
    // The sharded tenant ("bulk") serves traffic under its internal
    // shard ids (0x8000_0000..), one per thread it spans.
    let shard_spans = snap
        .spans
        .keys()
        .filter(|(t, s)| t.0 >= 0x8000_0000 && t.0 != u32::MAX && *s == Stage::Channel)
        .count();
    assert!(
        shard_spans >= 2,
        "expected >= 2 shard span keys, got {shard_spans}"
    );
    for tenant in [1u32, 2] {
        let slo = &snap.slo[&TenantKey(tenant)];
        assert!(slo.windows > 0, "tenant {tenant} closed no SLO windows");
        assert!(slo.target_p95_nanos > 0);
    }

    // 7. The world keeps functioning after the soak: one more burst runs
    // clean.
    tb.begin_measurement();
    tb.run(SimDuration::from_millis(100));
    let after = tb.report();
    assert!(after.workload("gold").iops > 75_000.0);
    let _ = tb.world().server().active_threads(); // still queryable

    // 8. Exit conservation: stop the generators, let every queue drain,
    // then require exact balance — every accepted request was answered
    // (submitted == completed + failed + retried per tenant) and no span
    // is left open anywhere.
    tb.world_mut().stop_all_workloads();
    tb.run(SimDuration::from_millis(200));
    let drained = tb.telemetry_snapshot().expect("telemetry enabled");
    assert!(!drained.ios.is_empty(), "no IO counters recorded");
    for (tenant, io) in &drained.ios {
        assert_eq!(
            io.submitted,
            io.completed + io.failed + io.retried,
            "tenant {tenant:?} leaked IOs after drain: {io:?}"
        );
        assert_eq!(
            io.open_spans, 0,
            "tenant {tenant:?} left spans open after drain: {io:?}"
        );
        assert!(io.submitted > 0, "tenant {tenant:?} recorded no traffic");
    }
}
